//! Fault injection: deterministic, seeded perturbations of the simulated
//! fabric.
//!
//! A [`FaultPlan`] is a time-ordered list of [`FaultEvent`]s against
//! specific links; [`FaultInjector::install`] schedules them as ordinary
//! engine events, so a fault plan composes with any workload and the
//! combined run stays exactly reproducible (the event queue orders ties
//! by insertion sequence, and the only randomness — [`FaultPlan::random`]
//! — is seeded).
//!
//! Four fault kinds, matching how real fabrics misbehave:
//!
//! * [`FaultKind::Degrade`] — the link keeps moving bytes but slower
//!   (β scales down): thermal throttling, ECC replay storms, QoS caps.
//! * [`FaultKind::LatencySpike`] — startup latency inflates for a window
//!   (α scales up): driver contention, interrupt storms.
//! * [`FaultKind::Flap`] — capacity drops to zero for a window, then
//!   returns: retraining links, transient resets.
//! * [`FaultKind::Kill`] — permanent link failure.
//!
//! Down links stall their flows at rate zero rather than erroring them:
//! the error surface is at the *waiter* ([`crate::SimThread::wait_until`]
//! / the transport's deadline), which is where real stacks detect dead
//! peers too — a NIC does not call you back to report silence.

use crate::engine::{Engine, OnComplete};
use crate::time::SimTime;
use mpx_topo::units::Secs;
use mpx_topo::{LinkId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens to the target link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Multiply the link's current capacity by `factor` (0 < factor ≤ 1).
    Degrade {
        /// Capacity multiplier.
        factor: f64,
    },
    /// Scale the link's startup latency by `factor` for `duration`
    /// seconds, then restore it.
    LatencySpike {
        /// Latency multiplier (≥ 1 for a spike).
        factor: f64,
        /// Seconds until the latency returns to nominal.
        duration: Secs,
    },
    /// Take the link down for `duration` seconds, then restore it at its
    /// prior capacity.
    Flap {
        /// Seconds the link stays dead.
        duration: Secs,
    },
    /// Permanent link failure (capacity → 0, never restored).
    Kill,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time (seconds) at which the fault fires.
    pub at: Secs,
    /// Target link.
    pub link: LinkId,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults against one topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// The faults, in any order (the engine's event queue sorts them).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an event (builder style).
    pub fn with(mut self, at: Secs, link: LinkId, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, link, kind });
        self
    }

    /// Generates `count` seeded random faults over `horizon` seconds
    /// against the inter-device links of `topo`. The same seed yields the
    /// same plan, so randomized fault campaigns are replayable.
    pub fn random(topo: &Topology, seed: u64, horizon: Secs, count: usize) -> FaultPlan {
        assert!(horizon > 0.0, "horizon must be positive");
        let links: Vec<LinkId> = topo.links.iter().map(|l| l.id).collect();
        assert!(!links.is_empty(), "topology has no links");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at = rng.gen_range(0.0..horizon);
            let link = links[rng.gen_range(0..links.len())];
            let kind = match rng.gen_range(0..4u32) {
                0 => FaultKind::Degrade {
                    factor: rng.gen_range(0.05..0.8),
                },
                1 => FaultKind::LatencySpike {
                    factor: rng.gen_range(2.0..50.0),
                    duration: rng.gen_range(0.0..horizon / 4.0),
                },
                2 => FaultKind::Flap {
                    duration: rng.gen_range(0.0..horizon / 4.0),
                },
                _ => FaultKind::Kill,
            };
            events.push(FaultEvent { at, link, kind });
        }
        FaultPlan { events }
    }

    /// Generates a seeded **soak schedule**: `count` random faults spread
    /// over `horizon` seconds, shaped so a supervised transport can always
    /// make progress — the raw material of the chaos soak harness.
    ///
    /// Differences from [`FaultPlan::random`]:
    ///
    /// * links in `protect` are never killed or flapped (they may still
    ///   degrade or see latency spikes, at bounded severity), so at least
    ///   one route stays available and recovery time stays bounded;
    /// * every transient window (flap, latency spike) lasts at most
    ///   `horizon / 8`, so no single outage swallows the run;
    /// * degrade factors are floored at 0.1 — throttled, never silently
    ///   dead, matching how production links actually misbehave;
    /// * kills are rationed to at most one per four events, so long soaks
    ///   exercise flapping/recovering fabrics rather than converging to a
    ///   graveyard.
    ///
    /// The same `(seed, horizon, count, protect)` yields the same plan.
    pub fn random_soak(
        topo: &Topology,
        seed: u64,
        horizon: Secs,
        count: usize,
        protect: &[LinkId],
    ) -> FaultPlan {
        assert!(horizon > 0.0, "horizon must be positive");
        let links: Vec<LinkId> = topo.links.iter().map(|l| l.id).collect();
        assert!(!links.is_empty(), "topology has no links");
        let killable: Vec<LinkId> = links
            .iter()
            .copied()
            .filter(|l| !protect.contains(l))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x736f_616b); // "soak"
        let max_window = horizon / 8.0;
        let mut kills_left = count / 4;
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at = rng.gen_range(0.0..horizon);
            let link = links[rng.gen_range(0..links.len())];
            let protected = protect.contains(&link);
            let kind = match rng.gen_range(0..4u32) {
                0 => FaultKind::Degrade {
                    factor: rng.gen_range(0.1..0.9),
                },
                1 => FaultKind::LatencySpike {
                    factor: rng.gen_range(2.0..20.0),
                    duration: rng.gen_range(0.0..max_window),
                },
                2 if !protected => FaultKind::Flap {
                    duration: rng.gen_range(0.0..max_window),
                },
                3 if !protected && !killable.is_empty() && kills_left > 0 => {
                    kills_left -= 1;
                    FaultKind::Kill
                }
                // Protected link drew a flap/kill, or the kill ration ran
                // out: degrade instead (still a fault, still bounded).
                _ => FaultKind::Degrade {
                    factor: rng.gen_range(0.3..0.9),
                },
            };
            events.push(FaultEvent { at, link, kind });
        }
        FaultPlan { events }
    }

    /// Checks the plan against a topology. Returns human-readable issues
    /// (empty = clean), mirroring `mpx_topo::validate`.
    pub fn validate(&self, topo: &Topology) -> Vec<String> {
        let mut issues = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            if ev.link.index() >= topo.link_count() {
                issues.push(format!("event {i}: unknown link {}", ev.link));
            }
            if !(ev.at >= 0.0 && ev.at.is_finite()) {
                issues.push(format!("event {i}: invalid time {}", ev.at));
            }
            match ev.kind {
                FaultKind::Degrade { factor } => {
                    if !(factor > 0.0 && factor <= 1.0) {
                        issues.push(format!("event {i}: degrade factor {factor} not in (0, 1]"));
                    }
                }
                FaultKind::LatencySpike { factor, duration } => {
                    if !(factor > 0.0 && factor.is_finite()) {
                        issues.push(format!("event {i}: latency factor {factor} invalid"));
                    }
                    if !(duration >= 0.0 && duration.is_finite()) {
                        issues.push(format!("event {i}: spike duration {duration} invalid"));
                    }
                }
                FaultKind::Flap { duration } => {
                    if !(duration >= 0.0 && duration.is_finite()) {
                        issues.push(format!("event {i}: flap duration {duration} invalid"));
                    }
                }
                FaultKind::Kill => {}
            }
        }
        issues
    }
}

/// Installs a [`FaultPlan`] on an [`Engine`] as scheduled events.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    installed: usize,
}

impl FaultInjector {
    /// Schedules every event of `plan` on `eng`, anchored at the engine's
    /// *current* virtual time. Each fired fault bumps
    /// [`crate::StatsSnapshot::faults_fired`]; restorations (flap/spike
    /// ends) do not count as faults.
    ///
    /// # Panics
    /// Panics if the plan does not validate against the engine's topology.
    pub fn install(eng: &Engine, plan: &FaultPlan) -> FaultInjector {
        let issues = plan.validate(eng.topology());
        assert!(issues.is_empty(), "invalid fault plan: {issues:?}");
        let base = eng.now();
        for ev in &plan.events {
            let link = ev.link;
            let at = base.after(ev.at);
            match ev.kind {
                FaultKind::Degrade { factor } => eng.schedule_at(
                    at,
                    OnComplete::Call(Box::new(move |ctx| {
                        ctx.note_fault();
                        ctx.record_fault_instant("degrade", link);
                        ctx.scale_link_capacity(link, factor);
                    })),
                ),
                FaultKind::LatencySpike { factor, duration } => eng.schedule_at(
                    at,
                    OnComplete::Call(Box::new(move |ctx| {
                        ctx.note_fault();
                        ctx.record_fault_instant("latency-spike", link);
                        ctx.set_link_latency_scale(link, factor);
                        ctx.schedule_in(
                            duration,
                            OnComplete::Call(Box::new(move |ctx| {
                                ctx.set_link_latency_scale(link, 1.0);
                            })),
                        );
                    })),
                ),
                FaultKind::Flap { duration } => eng.schedule_at(
                    at,
                    OnComplete::Call(Box::new(move |ctx| {
                        ctx.note_fault();
                        ctx.record_fault_instant("flap", link);
                        ctx.set_link_down(link);
                        ctx.schedule_in(
                            duration,
                            OnComplete::Call(Box::new(move |ctx| {
                                ctx.restore_link(link);
                            })),
                        );
                    })),
                ),
                FaultKind::Kill => eng.schedule_at(
                    at,
                    OnComplete::Call(Box::new(move |ctx| {
                        ctx.note_fault();
                        ctx.record_fault_instant("kill", link);
                        ctx.set_link_down(link);
                    })),
                ),
            }
        }
        FaultInjector {
            installed: plan.events.len(),
        }
    }

    /// Number of events scheduled.
    pub fn installed(&self) -> usize {
        self.installed
    }
}

/// Convenience: the engine's virtual time a fault plan needs to have
/// fully fired (latest event time plus any restoration window).
pub fn plan_horizon(plan: &FaultPlan) -> SimTime {
    let mut end: Secs = 0.0;
    for ev in &plan.events {
        let span = match ev.kind {
            FaultKind::LatencySpike { duration, .. } | FaultKind::Flap { duration } => {
                ev.at + duration
            }
            _ => ev.at,
        };
        end = end.max(span);
    }
    SimTime::from_secs(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FlowSpec;
    use mpx_topo::presets;
    use std::sync::Arc;

    fn direct_link(topo: &Topology) -> LinkId {
        let gpus = topo.gpus();
        topo.link_between(gpus[0], gpus[1]).unwrap().id
    }

    #[test]
    fn kill_stalls_flow_until_restore() {
        let topo = Arc::new(presets::synthetic_default());
        let link = direct_link(&topo);
        let eng = Engine::new(topo.clone());
        // 50 GB over a 50 GB/s link; killed at 0.5 s, restored manually
        // at 1.0 s → finishes at ~1.5 s.
        eng.start_flow(
            FlowSpec::new(vec![link], 50_000_000_000),
            OnComplete::Nothing,
        );
        let plan = FaultPlan::empty().with(0.5, link, FaultKind::Kill);
        FaultInjector::install(&eng, &plan);
        eng.run_until(SimTime::from_secs(1.0));
        assert!(!eng.link_is_up(link));
        let stats = eng.stats();
        assert_eq!(stats.faults_fired, 1);
        assert_eq!(stats.flows_stalled, 1);
        assert_eq!(stats.links_down, 1);
        assert_eq!(eng.active_flows(), 1, "flow must stall, not die");
        eng.restore_link(link);
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - 1.500002).abs() < 1e-6, "t = {t}");
        assert_eq!(eng.stats().links_down, 0);
    }

    #[test]
    fn flap_delays_completion_by_window() {
        let topo = Arc::new(presets::synthetic_default());
        let link = direct_link(&topo);
        let eng = Engine::new(topo.clone());
        eng.start_flow(
            FlowSpec::new(vec![link], 50_000_000_000),
            OnComplete::Nothing,
        );
        let plan = FaultPlan::empty().with(0.25, link, FaultKind::Flap { duration: 0.5 });
        FaultInjector::install(&eng, &plan);
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - 1.500002).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn degrade_scales_capacity() {
        let topo = Arc::new(presets::synthetic_default());
        let link = direct_link(&topo);
        let eng = Engine::new(topo.clone());
        eng.start_flow(
            FlowSpec::new(vec![link], 50_000_000_000),
            OnComplete::Nothing,
        );
        // Halve the link at t = 0.5: 25 GB done, 25 GB left at 25 GB/s.
        let plan = FaultPlan::empty().with(0.5, link, FaultKind::Degrade { factor: 0.5 });
        FaultInjector::install(&eng, &plan);
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - 1.500002).abs() < 1e-5, "t = {t}");
        assert!((eng.link_capacity(link) - 25e9).abs() < 1.0);
    }

    #[test]
    fn latency_spike_inflates_new_flows_only() {
        let topo = Arc::new(presets::synthetic_default());
        let link = direct_link(&topo);
        let eng = Engine::new(topo.clone());
        let plan = FaultPlan::empty().with(
            0.0,
            link,
            FaultKind::LatencySpike {
                factor: 100.0,
                duration: 1.0,
            },
        );
        FaultInjector::install(&eng, &plan);
        // Zero-byte flow issued during the spike: completes at 100× the
        // 2 µs link latency.
        eng.schedule_in(
            0.5,
            OnComplete::Call(Box::new(move |ctx| {
                ctx.start_flow(FlowSpec::new(vec![link], 0), OnComplete::Nothing);
            })),
        );
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - (1.0f64).max(0.5 + 200e-6)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let topo = presets::beluga();
        let a = FaultPlan::random(&topo, 42, 2.0, 16);
        let b = FaultPlan::random(&topo, 42, 2.0, 16);
        let c = FaultPlan::random(&topo, 43, 2.0, 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.validate(&topo).is_empty());
    }

    #[test]
    fn soak_plans_respect_protection_and_bounds() {
        let topo = presets::beluga();
        let gpus = topo.gpus();
        let direct = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        let protect = [direct];
        let horizon = 4.0;
        let plan = FaultPlan::random_soak(&topo, 7, horizon, 64, &protect);
        assert_eq!(plan.events.len(), 64);
        assert!(plan.validate(&topo).is_empty());
        let mut kills = 0;
        for ev in &plan.events {
            match ev.kind {
                FaultKind::Kill => {
                    kills += 1;
                    assert_ne!(ev.link, direct, "protected link was killed");
                }
                FaultKind::Flap { duration } => {
                    assert_ne!(ev.link, direct, "protected link was flapped");
                    assert!(duration <= horizon / 8.0, "flap window unbounded");
                }
                FaultKind::LatencySpike { duration, .. } => {
                    assert!(duration <= horizon / 8.0, "spike window unbounded");
                }
                FaultKind::Degrade { factor } => {
                    assert!(factor >= 0.1, "degrade floor violated: {factor}");
                }
            }
        }
        assert!(kills <= 64 / 4, "kill ration exceeded: {kills}");
        // Deterministic under a fixed seed, distinct across seeds.
        let again = FaultPlan::random_soak(&topo, 7, horizon, 64, &protect);
        assert_eq!(plan, again);
        let other = FaultPlan::random_soak(&topo, 8, horizon, 64, &protect);
        assert_ne!(plan, other);
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let topo = presets::beluga();
        let plan = FaultPlan::random(&topo, 7, 1.0, 8);
        let text = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn validate_flags_bad_events() {
        let topo = presets::synthetic_default();
        let bad = FaultPlan::empty()
            .with(-1.0, LinkId(0), FaultKind::Kill)
            .with(0.1, LinkId(9999), FaultKind::Kill)
            .with(0.1, LinkId(0), FaultKind::Degrade { factor: 1.5 });
        assert_eq!(bad.validate(&topo).len(), 3);
    }

    #[test]
    fn unrelated_flows_keep_moving_past_a_dead_link() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let l01 = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        let l23 = topo.link_between(gpus[2], gpus[3]).unwrap().id;
        let eng = Engine::new(topo.clone());
        let n = 48_000_000_000usize; // 1 s at full rate
        eng.start_flow(FlowSpec::new(vec![l01], n), OnComplete::Nothing);
        eng.start_flow(FlowSpec::new(vec![l23], n), OnComplete::Nothing);
        FaultInjector::install(&eng, &FaultPlan::empty().with(0.1, l01, FaultKind::Kill));
        eng.run_until_idle();
        // The l23 flow finishes on schedule; the l01 flow stays stalled.
        let t = eng.now().as_secs();
        assert!((t - 1.000002).abs() < 1e-6, "t = {t}");
        assert_eq!(eng.active_flows(), 1);
        assert_eq!(eng.stats().flows_stalled, 1);
    }

    #[test]
    fn plan_horizon_covers_restorations() {
        let plan = FaultPlan::empty()
            .with(0.5, LinkId(0), FaultKind::Flap { duration: 2.0 })
            .with(1.0, LinkId(0), FaultKind::Kill);
        assert_eq!(plan_horizon(&plan), SimTime::from_secs(2.5));
    }
}
