//! Max-min fair rate allocation over shared links ("progressive
//! filling").
//!
//! Given link capacities and the set of links each flow traverses
//! (with multiplicity: a flow crossing a link twice consumes twice its
//! rate there), the algorithm repeatedly finds the most-contended link,
//! freezes every flow crossing it at the link's fair share, removes the
//! consumed capacity, and recurses on the rest. The result is the unique
//! max-min fair allocation: no flow's rate can be raised without lowering
//! that of a flow with an equal-or-smaller rate.
//!
//! This is what turns static link bandwidths into the *dynamic* contention
//! behaviour the paper observes: staged paths sharing a DRAM channel or a
//! UPI hop slow each other down exactly in proportion to how many of them
//! are active.

/// A flow's demand: the links it crosses, with multiplicity, and its
/// QoS weight.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// `(link index, multiplicity)` — multiplicity counts how many times
    /// the route crosses the link.
    pub links: Vec<(usize, f64)>,
    /// Weighted-fair-share weight: where flows contend, rates divide in
    /// proportion to their weights.
    pub weight: f64,
}

impl Default for FlowDemand {
    fn default() -> Self {
        FlowDemand {
            links: Vec::new(),
            weight: 1.0,
        }
    }
}

impl FlowDemand {
    /// Builds a demand from a raw route, merging repeated links into
    /// multiplicities.
    pub fn from_route(route: &[usize]) -> FlowDemand {
        let mut links: Vec<(usize, f64)> = Vec::with_capacity(route.len());
        for &l in route {
            match links.iter_mut().find(|(id, _)| *id == l) {
                Some((_, m)) => *m += 1.0,
                None => links.push((l, 1.0)),
            }
        }
        FlowDemand { links, weight: 1.0 }
    }

    /// Builds a demand with a QoS weight: where flows contend, a flow of
    /// weight `w` receives `w` times the rate of a weight-1 flow
    /// (classic weighted max-min fairness).
    ///
    /// # Panics
    /// Panics unless `weight > 0`.
    pub fn from_route_weighted(route: &[usize], weight: f64) -> FlowDemand {
        assert!(weight > 0.0 && weight.is_finite(), "invalid weight {weight}");
        let mut d = FlowDemand::from_route(route);
        d.weight = weight;
        d
    }
}

/// Computes max-min fair rates (bytes/s) for `flows` over links with the
/// given `capacities` (bytes/s).
///
/// Flows with an empty demand are unconstrained and get `f64::INFINITY`.
///
/// # Panics
/// Panics if a flow references a link index out of range, or any capacity
/// is non-positive — both indicate topology construction bugs.
pub fn max_min_rates(capacities: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    for (i, c) in capacities.iter().enumerate() {
        assert!(*c > 0.0 && c.is_finite(), "link {i} capacity {c} invalid");
    }
    let mut rates = vec![f64::INFINITY; flows.len()];
    let mut frozen = vec![false; flows.len()];
    // Residual capacity per link after frozen flows' consumption.
    let mut residual = capacities.to_vec();
    // Total *weighted* multiplicity of unfrozen flows per link: a flow
    // of weight w and multiplicity m demands w·m per unit of fair share.
    let mut load = vec![0.0f64; capacities.len()];
    for (fi, f) in flows.iter().enumerate() {
        assert!(
            f.weight > 0.0 && f.weight.is_finite(),
            "flow {fi} has invalid weight {}",
            f.weight
        );
        if f.links.is_empty() {
            frozen[fi] = true; // unconstrained
            continue;
        }
        for &(l, m) in &f.links {
            assert!(l < capacities.len(), "flow {fi} references unknown link {l}");
            load[l] += f.weight * m;
        }
    }

    loop {
        // Most-contended link: minimal residual / weighted load.
        let mut best: Option<(usize, f64)> = None;
        for l in 0..residual.len() {
            if load[l] > 0.0 {
                let share = residual[l] / load[l];
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((l, share));
                }
            }
        }
        let Some((bottleneck, share_unit)) = best else {
            break; // all flows frozen
        };
        // Freeze every unfrozen flow crossing the bottleneck at its
        // weighted share.
        for (fi, f) in flows.iter().enumerate() {
            if frozen[fi] {
                continue;
            }
            if f.links.iter().any(|&(l, _)| l == bottleneck) {
                frozen[fi] = true;
                let rate = share_unit * f.weight;
                rates[fi] = rate;
                for &(l, m) in &f.links {
                    residual[l] = (residual[l] - rate * m).max(0.0);
                    load[l] -= f.weight * m;
                }
            }
        }
        // Numerical safety: the bottleneck must now be unloaded.
        load[bottleneck] = 0.0;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(route: &[usize]) -> FlowDemand {
        FlowDemand::from_route(route)
    }

    #[test]
    fn single_flow_gets_min_capacity_on_route() {
        let rates = max_min_rates(&[10.0, 4.0, 8.0], &[demand(&[0, 1, 2])]);
        assert_eq!(rates, vec![4.0]);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let rates = max_min_rates(&[10.0], &[demand(&[0]), demand(&[0])]);
        assert_eq!(rates, vec![5.0, 5.0]);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let rates = max_min_rates(&[10.0, 6.0], &[demand(&[0]), demand(&[1])]);
        assert_eq!(rates, vec![10.0, 6.0]);
    }

    #[test]
    fn bottlenecked_flow_releases_capacity_elsewhere() {
        // Flow 0 crosses links 0 and 1; flow 1 only link 1.
        // Link 0 = 2 is the bottleneck for flow 0, so flow 1 receives the
        // rest of link 1's capacity: 10 - 2 = 8.
        let rates = max_min_rates(&[2.0, 10.0], &[demand(&[0, 1]), demand(&[1])]);
        assert_eq!(rates, vec![2.0, 8.0]);
    }

    #[test]
    fn classic_three_flow_example() {
        // Links A=10, B=10. Flows: f0 on A, f1 on B, f2 on A+B.
        // Fair: f2 = 5, then f0 = f1 = 5. All equal here.
        let rates = max_min_rates(
            &[10.0, 10.0],
            &[demand(&[0]), demand(&[1]), demand(&[0, 1])],
        );
        assert_eq!(rates, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn multiplicity_counts_double() {
        // One flow crossing the same link twice can only move cap/2.
        let rates = max_min_rates(&[10.0], &[demand(&[0, 0])]);
        assert_eq!(rates, vec![5.0]);
    }

    #[test]
    fn multiplicity_shares_with_single_crossers() {
        // Flow 0 crosses twice, flow 1 once: loads are 2 and 1; the fair
        // share per crossing is 10/3, flow rates are the same share.
        let rates = max_min_rates(&[10.0], &[demand(&[0, 0]), demand(&[0])]);
        assert!((rates[0] - 10.0 / 3.0).abs() < 1e-12);
        assert!((rates[1] - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_flows_split_proportionally() {
        // Weight 3 vs weight 1 on a 12-unit link: 9 vs 3.
        let rates = max_min_rates(
            &[12.0],
            &[
                FlowDemand::from_route_weighted(&[0], 3.0),
                FlowDemand::from_route_weighted(&[0], 1.0),
            ],
        );
        assert!((rates[0] - 9.0).abs() < 1e-12, "rates {rates:?}");
        assert!((rates[1] - 3.0).abs() < 1e-12, "rates {rates:?}");
    }

    #[test]
    fn weighted_flow_respects_other_bottlenecks() {
        // The heavy flow also crosses a private 2-unit link: its weighted
        // entitlement (9) is capped there, and the light flow picks up
        // the released capacity.
        let rates = max_min_rates(
            &[12.0, 2.0],
            &[
                FlowDemand::from_route_weighted(&[0, 1], 3.0),
                FlowDemand::from_route_weighted(&[0], 1.0),
            ],
        );
        assert!((rates[0] - 2.0).abs() < 1e-12, "rates {rates:?}");
        assert!((rates[1] - 10.0).abs() < 1e-12, "rates {rates:?}");
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn zero_weight_rejected() {
        FlowDemand::from_route_weighted(&[0], 0.0);
    }

    #[test]
    fn empty_demand_is_unconstrained() {
        let rates = max_min_rates(&[10.0], &[FlowDemand::default(), demand(&[0])]);
        assert_eq!(rates[0], f64::INFINITY);
        assert_eq!(rates[1], 10.0);
    }

    #[test]
    fn no_flows_no_rates() {
        assert!(max_min_rates(&[1.0, 2.0], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        max_min_rates(&[0.0], &[demand(&[0])]);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn out_of_range_link_panics() {
        max_min_rates(&[1.0], &[demand(&[3])]);
    }

    #[test]
    fn staged_bibw_contention_shape() {
        // The Observation-5 scenario in miniature: a DRAM channel (link 2,
        // 38 GB/s) crossed by four staging flows (two directions × two
        // legs), while each leg also crosses its own PCIe link (12 GB/s).
        // PCIe is the bottleneck while DRAM load is light; once four legs
        // are active the DRAM channel (38/4 = 9.5) throttles all of them.
        let caps = [12.0, 12.0, 38.0, 12.0, 12.0];
        let two = max_min_rates(&caps, &[demand(&[0, 2]), demand(&[2, 1])]);
        assert_eq!(two, vec![12.0, 12.0]);
        let four = max_min_rates(
            &caps,
            &[
                demand(&[0, 2]),
                demand(&[2, 1]),
                demand(&[3, 2]),
                demand(&[2, 4]),
            ],
        );
        for r in &four {
            assert!((r - 9.5).abs() < 1e-12, "rates {four:?}");
        }
    }

    // Property-based checks of the max-min definition.
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_case() -> impl Strategy<Value = (Vec<f64>, Vec<FlowDemand>)> {
            (2usize..6).prop_flat_map(|nlinks| {
                let caps = proptest::collection::vec(1.0f64..100.0, nlinks);
                let flows = proptest::collection::vec(
                    proptest::collection::vec(0usize..nlinks, 1..4),
                    1..8,
                )
                .prop_map(|routes| {
                    routes
                        .iter()
                        .map(|r| FlowDemand::from_route(r))
                        .collect::<Vec<_>>()
                });
                (caps, flows)
            })
        }

        proptest! {
            #[test]
            fn no_link_oversubscribed((caps, flows) in arb_case()) {
                let rates = max_min_rates(&caps, &flows);
                let mut used = vec![0.0; caps.len()];
                for (f, r) in flows.iter().zip(&rates) {
                    for &(l, m) in &f.links {
                        used[l] += r * m;
                    }
                }
                for (l, (&u, &c)) in used.iter().zip(&caps).enumerate() {
                    prop_assert!(u <= c * (1.0 + 1e-9), "link {l}: used {u} > cap {c}");
                }
            }

            #[test]
            fn every_flow_has_a_saturated_bottleneck((caps, flows) in arb_case()) {
                // Max-min property: each flow crosses at least one link that
                // is (numerically) fully utilized — otherwise its rate could
                // be raised without hurting anyone.
                let rates = max_min_rates(&caps, &flows);
                let mut used = vec![0.0; caps.len()];
                for (f, r) in flows.iter().zip(&rates) {
                    for &(l, m) in &f.links {
                        used[l] += r * m;
                    }
                }
                for (fi, f) in flows.iter().enumerate() {
                    let has_bottleneck = f
                        .links
                        .iter()
                        .any(|&(l, _)| used[l] >= caps[l] * (1.0 - 1e-9));
                    prop_assert!(has_bottleneck, "flow {fi} rate {} has slack everywhere", rates[fi]);
                }
            }

            #[test]
            fn rates_positive((caps, flows) in arb_case()) {
                for (fi, r) in max_min_rates(&caps, &flows).iter().enumerate() {
                    prop_assert!(*r > 0.0, "flow {fi} rate {r}");
                }
            }
        }
    }
}
