//! Max-min fair rate allocation over shared links ("progressive
//! filling").
//!
//! Given link capacities and the set of links each flow traverses
//! (with multiplicity: a flow crossing a link twice consumes twice its
//! rate there), the algorithm repeatedly finds the most-contended link,
//! freezes every flow crossing it at the link's fair share, removes the
//! consumed capacity, and recurses on the rest. The result is the unique
//! max-min fair allocation: no flow's rate can be raised without lowering
//! that of a flow with an equal-or-smaller rate.
//!
//! This is what turns static link bandwidths into the *dynamic* contention
//! behaviour the paper observes: staged paths sharing a DRAM channel or a
//! UPI hop slow each other down exactly in proportion to how many of them
//! are active.

/// A flow's demand: the links it crosses, with multiplicity, and its
/// QoS weight.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// `(link index, multiplicity)` — multiplicity counts how many times
    /// the route crosses the link.
    pub links: Vec<(usize, f64)>,
    /// Weighted-fair-share weight: where flows contend, rates divide in
    /// proportion to their weights.
    pub weight: f64,
}

impl Default for FlowDemand {
    fn default() -> Self {
        FlowDemand {
            links: Vec::new(),
            weight: 1.0,
        }
    }
}

impl FlowDemand {
    /// Builds a demand from a raw route, merging repeated links into
    /// multiplicities. Sort-and-fold, so the cost is O(n log n) rather
    /// than the quadratic scan-per-hop this used to do; the resulting
    /// link list is sorted by link index (a canonical order downstream
    /// consumers may rely on for reproducible float accumulation).
    pub fn from_route(route: &[usize]) -> FlowDemand {
        let mut links: Vec<(usize, f64)> = route.iter().map(|&l| (l, 1.0)).collect();
        links.sort_unstable_by_key(|&(l, _)| l);
        links.dedup_by(|cur, kept| {
            if cur.0 == kept.0 {
                kept.1 += cur.1;
                true
            } else {
                false
            }
        });
        FlowDemand { links, weight: 1.0 }
    }

    /// Builds a demand with a QoS weight: where flows contend, a flow of
    /// weight `w` receives `w` times the rate of a weight-1 flow
    /// (classic weighted max-min fairness).
    ///
    /// # Panics
    /// Panics unless `weight > 0`.
    pub fn from_route_weighted(route: &[usize], weight: f64) -> FlowDemand {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "invalid weight {weight}"
        );
        let mut d = FlowDemand::from_route(route);
        d.weight = weight;
        d
    }
}

/// Computes max-min fair rates (bytes/s) for `flows` over links with the
/// given `capacities` (bytes/s).
///
/// Flows with an empty demand are unconstrained and get `f64::INFINITY`.
///
/// # Panics
/// Panics if a flow references a link index out of range, or any capacity
/// is non-positive — both indicate topology construction bugs.
pub fn max_min_rates(capacities: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    for (i, c) in capacities.iter().enumerate() {
        assert!(*c > 0.0 && c.is_finite(), "link {i} capacity {c} invalid");
    }
    let mut rates = vec![f64::INFINITY; flows.len()];
    let mut frozen = vec![false; flows.len()];
    // Residual capacity per link after frozen flows' consumption.
    let mut residual = capacities.to_vec();
    // Total *weighted* multiplicity of unfrozen flows per link: a flow
    // of weight w and multiplicity m demands w·m per unit of fair share.
    let mut load = vec![0.0f64; capacities.len()];
    for (fi, f) in flows.iter().enumerate() {
        assert!(
            f.weight > 0.0 && f.weight.is_finite(),
            "flow {fi} has invalid weight {}",
            f.weight
        );
        if f.links.is_empty() {
            frozen[fi] = true; // unconstrained
            continue;
        }
        for &(l, m) in &f.links {
            assert!(
                l < capacities.len(),
                "flow {fi} references unknown link {l}"
            );
            load[l] += f.weight * m;
        }
    }

    loop {
        // Most-contended link: minimal residual / weighted load.
        let mut best: Option<(usize, f64)> = None;
        for l in 0..residual.len() {
            if load[l] > 0.0 {
                let share = residual[l] / load[l];
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((l, share));
                }
            }
        }
        let Some((bottleneck, share_unit)) = best else {
            break; // all flows frozen
        };
        // Freeze every unfrozen flow crossing the bottleneck at its
        // weighted share.
        for (fi, f) in flows.iter().enumerate() {
            if frozen[fi] {
                continue;
            }
            if f.links.iter().any(|&(l, _)| l == bottleneck) {
                frozen[fi] = true;
                let rate = share_unit * f.weight;
                rates[fi] = rate;
                for &(l, m) in &f.links {
                    residual[l] = (residual[l] - rate * m).max(0.0);
                    load[l] -= f.weight * m;
                }
            }
        }
        // Numerical safety: the bottleneck must now be unloaded.
        load[bottleneck] = 0.0;
    }
    rates
}

/// Heap entry: a link's fair share per unit weight at the time it was
/// (re)inserted. Ordered ascending by share, ties broken by link index so
/// the heap selects the same bottleneck as `max_min_rates`' linear scan.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkShare {
    share: f64,
    link: usize,
}

impl Eq for LinkShare {}

impl PartialOrd for LinkShare {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LinkShare {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.share
            .total_cmp(&other.share)
            .then(self.link.cmp(&other.link))
    }
}

/// Reusable state for the fast progressive-filling allocator
/// ([`FairShareScratch::compute_with`]). All buffers persist between
/// calls, so steady-state recomputation allocates nothing; per-link
/// state is epoch-stamped and lazily reset, so a call touching `k` links
/// costs O(k + flows), not O(total links).
#[derive(Debug, Default)]
pub struct FairShareScratch {
    /// Residual capacity per link (valid where `mark == epoch`).
    residual: Vec<f64>,
    /// Total weighted multiplicity of unfrozen flows per link.
    load: Vec<f64>,
    /// Flow indices crossing each link (this call's flows).
    link_flows: Vec<Vec<u32>>,
    /// Epoch stamp marking which per-link entries are current.
    mark: Vec<u64>,
    epoch: u64,
    /// Links referenced by this call's flows, in first-seen order.
    touched: Vec<usize>,
    /// Lazy min-heap over links keyed by `residual / load`.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<LinkShare>>,
    frozen: Vec<bool>,
}

impl FairShareScratch {
    /// Computes max-min fair rates for `n` flows (accessed through
    /// `flow`, indexed `0..n`) into `rates`, clearing it first.
    ///
    /// Produces the same allocation as [`max_min_rates`] (verified by
    /// proptest against that oracle): each freeze round picks the
    /// bottleneck from a lazily-rebuilt min-heap over links — near
    /// O(log L) per round — instead of rescanning every link and flow.
    /// Freeze order within a round follows flow index order, matching
    /// the oracle's float-operation order, so agreement is exact up to
    /// bottleneck-selection rounding.
    ///
    /// Only links actually referenced by the flows are touched or
    /// validated; `capacities` entries for untouched links are ignored.
    ///
    /// # Panics
    /// Panics on referenced links out of range or with non-positive
    /// capacity, and on non-positive flow weights.
    pub fn compute_with<'a, F>(
        &mut self,
        capacities: &[f64],
        n: usize,
        flow: F,
        rates: &mut Vec<f64>,
    ) where
        F: Fn(usize) -> &'a FlowDemand,
    {
        rates.clear();
        rates.resize(n, f64::INFINITY);
        self.frozen.clear();
        self.frozen.resize(n, false);
        self.heap.clear();
        if self.residual.len() < capacities.len() {
            self.residual.resize(capacities.len(), 0.0);
            self.load.resize(capacities.len(), 0.0);
            self.link_flows.resize_with(capacities.len(), Vec::new);
            self.mark.resize(capacities.len(), 0);
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.touched.clear();

        // Build per-link loads and flow lists (flow-index order, so the
        // freeze pass below replays the oracle's float ops exactly).
        for fi in 0..n {
            let f = flow(fi);
            assert!(
                f.weight > 0.0 && f.weight.is_finite(),
                "flow {fi} has invalid weight {}",
                f.weight
            );
            if f.links.is_empty() {
                self.frozen[fi] = true; // unconstrained
                continue;
            }
            for &(l, m) in &f.links {
                assert!(
                    l < capacities.len(),
                    "flow {fi} references unknown link {l}"
                );
                if self.mark[l] != epoch {
                    self.mark[l] = epoch;
                    let c = capacities[l];
                    assert!(c > 0.0 && c.is_finite(), "link {l} capacity {c} invalid");
                    self.residual[l] = c;
                    self.load[l] = 0.0;
                    self.link_flows[l].clear();
                    self.touched.push(l);
                }
                self.load[l] += f.weight * m;
                self.link_flows[l].push(fi as u32);
            }
        }
        // Seed the heap: one entry per loaded link.
        for &l in &self.touched {
            if self.load[l] > 0.0 {
                self.heap.push(std::cmp::Reverse(LinkShare {
                    share: self.residual[l] / self.load[l],
                    link: l,
                }));
            }
        }

        // Freeze rounds: pop the minimal-share link, validating lazily.
        while let Some(std::cmp::Reverse(entry)) = self.heap.pop() {
            let l = entry.link;
            if self.load[l] <= 0.0 {
                continue; // fully frozen link; stale entry
            }
            let current = self.residual[l] / self.load[l];
            if current != entry.share {
                // Stale (flows froze since insertion): shares only grow,
                // so reinsert at the current value and keep popping.
                self.heap.push(std::cmp::Reverse(LinkShare {
                    share: current,
                    link: l,
                }));
                continue;
            }
            let share_unit = current;
            // Freeze every unfrozen flow crossing the bottleneck, in
            // flow-index order (the lists are built in that order).
            let flows_here = std::mem::take(&mut self.link_flows[l]);
            for &fi in &flows_here {
                let fi = fi as usize;
                if self.frozen[fi] {
                    continue;
                }
                let f = flow(fi);
                self.frozen[fi] = true;
                let rate = share_unit * f.weight;
                rates[fi] = rate;
                for &(l2, m) in &f.links {
                    self.residual[l2] = (self.residual[l2] - rate * m).max(0.0);
                    self.load[l2] -= f.weight * m;
                }
            }
            self.link_flows[l] = flows_here;
            // Numerical safety, mirroring the oracle: the bottleneck is
            // now fully frozen.
            self.load[l] = 0.0;
        }
    }
}

/// [`max_min_rates`] semantics via the fast per-link-list + heap
/// allocator. One-shot convenience over [`FairShareScratch::compute_with`];
/// hot paths should hold a scratch and reuse it.
pub fn max_min_rates_fast(capacities: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    let mut scratch = FairShareScratch::default();
    let mut rates = Vec::new();
    scratch.compute_with(capacities, flows.len(), |i| &flows[i], &mut rates);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(route: &[usize]) -> FlowDemand {
        FlowDemand::from_route(route)
    }

    #[test]
    fn single_flow_gets_min_capacity_on_route() {
        let rates = max_min_rates(&[10.0, 4.0, 8.0], &[demand(&[0, 1, 2])]);
        assert_eq!(rates, vec![4.0]);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let rates = max_min_rates(&[10.0], &[demand(&[0]), demand(&[0])]);
        assert_eq!(rates, vec![5.0, 5.0]);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let rates = max_min_rates(&[10.0, 6.0], &[demand(&[0]), demand(&[1])]);
        assert_eq!(rates, vec![10.0, 6.0]);
    }

    #[test]
    fn bottlenecked_flow_releases_capacity_elsewhere() {
        // Flow 0 crosses links 0 and 1; flow 1 only link 1.
        // Link 0 = 2 is the bottleneck for flow 0, so flow 1 receives the
        // rest of link 1's capacity: 10 - 2 = 8.
        let rates = max_min_rates(&[2.0, 10.0], &[demand(&[0, 1]), demand(&[1])]);
        assert_eq!(rates, vec![2.0, 8.0]);
    }

    #[test]
    fn classic_three_flow_example() {
        // Links A=10, B=10. Flows: f0 on A, f1 on B, f2 on A+B.
        // Fair: f2 = 5, then f0 = f1 = 5. All equal here.
        let rates = max_min_rates(
            &[10.0, 10.0],
            &[demand(&[0]), demand(&[1]), demand(&[0, 1])],
        );
        assert_eq!(rates, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn multiplicity_counts_double() {
        // One flow crossing the same link twice can only move cap/2.
        let rates = max_min_rates(&[10.0], &[demand(&[0, 0])]);
        assert_eq!(rates, vec![5.0]);
    }

    #[test]
    fn multiplicity_shares_with_single_crossers() {
        // Flow 0 crosses twice, flow 1 once: loads are 2 and 1; the fair
        // share per crossing is 10/3, flow rates are the same share.
        let rates = max_min_rates(&[10.0], &[demand(&[0, 0]), demand(&[0])]);
        assert!((rates[0] - 10.0 / 3.0).abs() < 1e-12);
        assert!((rates[1] - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_flows_split_proportionally() {
        // Weight 3 vs weight 1 on a 12-unit link: 9 vs 3.
        let rates = max_min_rates(
            &[12.0],
            &[
                FlowDemand::from_route_weighted(&[0], 3.0),
                FlowDemand::from_route_weighted(&[0], 1.0),
            ],
        );
        assert!((rates[0] - 9.0).abs() < 1e-12, "rates {rates:?}");
        assert!((rates[1] - 3.0).abs() < 1e-12, "rates {rates:?}");
    }

    #[test]
    fn weighted_flow_respects_other_bottlenecks() {
        // The heavy flow also crosses a private 2-unit link: its weighted
        // entitlement (9) is capped there, and the light flow picks up
        // the released capacity.
        let rates = max_min_rates(
            &[12.0, 2.0],
            &[
                FlowDemand::from_route_weighted(&[0, 1], 3.0),
                FlowDemand::from_route_weighted(&[0], 1.0),
            ],
        );
        assert!((rates[0] - 2.0).abs() < 1e-12, "rates {rates:?}");
        assert!((rates[1] - 10.0).abs() < 1e-12, "rates {rates:?}");
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn zero_weight_rejected() {
        FlowDemand::from_route_weighted(&[0], 0.0);
    }

    #[test]
    fn empty_demand_is_unconstrained() {
        let rates = max_min_rates(&[10.0], &[FlowDemand::default(), demand(&[0])]);
        assert_eq!(rates[0], f64::INFINITY);
        assert_eq!(rates[1], 10.0);
    }

    #[test]
    fn no_flows_no_rates() {
        assert!(max_min_rates(&[1.0, 2.0], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        max_min_rates(&[0.0], &[demand(&[0])]);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn out_of_range_link_panics() {
        max_min_rates(&[1.0], &[demand(&[3])]);
    }

    #[test]
    fn staged_bibw_contention_shape() {
        // The Observation-5 scenario in miniature: a DRAM channel (link 2,
        // 38 GB/s) crossed by four staging flows (two directions × two
        // legs), while each leg also crosses its own PCIe link (12 GB/s).
        // PCIe is the bottleneck while DRAM load is light; once four legs
        // are active the DRAM channel (38/4 = 9.5) throttles all of them.
        let caps = [12.0, 12.0, 38.0, 12.0, 12.0];
        let two = max_min_rates(&caps, &[demand(&[0, 2]), demand(&[2, 1])]);
        assert_eq!(two, vec![12.0, 12.0]);
        let four = max_min_rates(
            &caps,
            &[
                demand(&[0, 2]),
                demand(&[2, 1]),
                demand(&[3, 2]),
                demand(&[2, 4]),
            ],
        );
        for r in &four {
            assert!((r - 9.5).abs() < 1e-12, "rates {four:?}");
        }
    }

    // Property-based checks of the max-min definition.
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_case() -> impl Strategy<Value = (Vec<f64>, Vec<FlowDemand>)> {
            (2usize..6).prop_flat_map(|nlinks| {
                let caps = proptest::collection::vec(1.0f64..100.0, nlinks);
                let flows = proptest::collection::vec(
                    proptest::collection::vec(0usize..nlinks, 1..4),
                    1..8,
                )
                .prop_map(|routes| {
                    routes
                        .iter()
                        .map(|r| FlowDemand::from_route(r))
                        .collect::<Vec<_>>()
                });
                (caps, flows)
            })
        }

        proptest! {
            #[test]
            fn no_link_oversubscribed((caps, flows) in arb_case()) {
                let rates = max_min_rates(&caps, &flows);
                let mut used = vec![0.0; caps.len()];
                for (f, r) in flows.iter().zip(&rates) {
                    for &(l, m) in &f.links {
                        used[l] += r * m;
                    }
                }
                for (l, (&u, &c)) in used.iter().zip(&caps).enumerate() {
                    prop_assert!(u <= c * (1.0 + 1e-9), "link {l}: used {u} > cap {c}");
                }
            }

            #[test]
            fn every_flow_has_a_saturated_bottleneck((caps, flows) in arb_case()) {
                // Max-min property: each flow crosses at least one link that
                // is (numerically) fully utilized — otherwise its rate could
                // be raised without hurting anyone.
                let rates = max_min_rates(&caps, &flows);
                let mut used = vec![0.0; caps.len()];
                for (f, r) in flows.iter().zip(&rates) {
                    for &(l, m) in &f.links {
                        used[l] += r * m;
                    }
                }
                for (fi, f) in flows.iter().enumerate() {
                    let has_bottleneck = f
                        .links
                        .iter()
                        .any(|&(l, _)| used[l] >= caps[l] * (1.0 - 1e-9));
                    prop_assert!(has_bottleneck, "flow {fi} rate {} has slack everywhere", rates[fi]);
                }
            }

            #[test]
            fn rates_positive((caps, flows) in arb_case()) {
                for (fi, r) in max_min_rates(&caps, &flows).iter().enumerate() {
                    prop_assert!(*r > 0.0, "flow {fi} rate {r}");
                }
            }
        }
    }
}
