//! Parallel, component-partitioned scenario execution with bit-identical
//! determinism.
//!
//! A [`Scenario`] is a workload declared up front: flows with issue
//! times, an optional [`FaultPlan`], optional seeded jitter. It can run
//! two ways:
//!
//! * [`Scenario::run_serial`] — one engine, one event queue: the oracle.
//! * [`Scenario::run_parallel`] — the workload is decomposed by
//!   [`crate::partition::partition_scenario`] into link-disjoint
//!   partitions, each simulated on its *own* engine with its own event
//!   queue and virtual clock, drained by a pool of worker threads.
//!
//! The parallel result is **bit-identical** to the serial one — same
//! completion times (integer nanoseconds), same per-link byte counters
//! (same f64 bits), same stats — because every source of divergence is
//! pinned:
//!
//! * **Flow identity.** Global flow ids are assigned by issue order
//!   `(time, declaration index)` before execution. Each partition issues
//!   its flows in declaration order, so its engine-local ids are
//!   order-isomorphic to the global ids; the engine's canonical
//!   sorted-by-id float accumulation therefore visits flows in the same
//!   relative order either way.
//! * **Event interleaving.** Within a partition, queue tie-breaks
//!   (insertion sequence) replay the serial engine's relative order,
//!   because the serial engine only ever interleaves *other* partitions'
//!   events between them — and those, by link-disjointness, cannot
//!   observe or perturb this partition's state.
//! * **Jitter.** Latency jitter is pre-drawn from the seeded RNG in
//!   global issue order and attached to each spec as a
//!   [`FlowSpec::latency_factor`], so a flow receives the same factor no
//!   matter which engine issues it.
//! * **Merge order.** Completions are merged by virtual time with a
//!   seeded tie-break (`splitmix64(seed ^ flow)`), applied identically
//!   to the serial trace, so even simultaneous completions in different
//!   partitions have one canonical order.
//!
//! [`equivalence_diff`] checks all of it, down to f64 bit patterns; the
//! `parallel_equiv` proptest drives it over random fault storms at
//! 1/2/4/8 workers.

use crate::engine::{Engine, FlowSpec, OnComplete, StatsSnapshot, TraceRecord};
use crate::engine::{JitterModel, LinkStats};
use crate::fault::{FaultInjector, FaultPlan};
use crate::partition::{partition_scenario, PartitionPlan};
use crate::time::SimTime;
use mpx_obs::{AnomalyEngine, Phase, Recorder, TriggerClass};
use mpx_topo::units::Secs;
use mpx_topo::Topology;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A workload declared up front: flows with issue times plus faults.
/// Build with the fluent methods, then [`Scenario::run_serial`] or
/// [`Scenario::run_parallel`].
#[derive(Clone)]
pub struct Scenario {
    topo: Arc<Topology>,
    flows: Vec<(Secs, FlowSpec)>,
    faults: FaultPlan,
    jitter: Option<JitterModel>,
    tie_seed: u64,
    trace: bool,
    recorder: Option<Recorder>,
    anomalies: Option<Arc<AnomalyEngine>>,
}

impl Scenario {
    /// An empty scenario over `topo`, tracing enabled.
    pub fn new(topo: Arc<Topology>) -> Scenario {
        Scenario {
            topo,
            flows: Vec::new(),
            faults: FaultPlan::empty(),
            jitter: None,
            tie_seed: 0,
            trace: true,
            recorder: None,
            anomalies: None,
        }
    }

    /// The scenario's topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Declares a flow issued at virtual time zero.
    pub fn flow(self, spec: FlowSpec) -> Scenario {
        self.flow_at(0.0, spec)
    }

    /// Declares a flow issued at virtual time `at` seconds.
    pub fn flow_at(mut self, at: Secs, spec: FlowSpec) -> Scenario {
        assert!(at >= 0.0 && at.is_finite(), "invalid issue time {at}");
        assert!(!spec.route.is_empty(), "scenario flow has an empty route");
        self.flows.push((at, spec));
        self
    }

    /// Installs a fault plan (validated against the topology at run
    /// time, exactly like [`FaultInjector::install`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Scenario {
        self.faults = plan;
        self
    }

    /// Enables deterministic latency jitter. Factors are pre-drawn in
    /// global issue order, so serial and parallel runs see identical
    /// perturbations.
    pub fn with_jitter(mut self, model: JitterModel) -> Scenario {
        assert!(
            (0.0..1.0).contains(&model.spread),
            "spread must be in [0, 1)"
        );
        self.jitter = Some(model);
        self
    }

    /// Seeds the completion-merge tie-break (default 0).
    pub fn with_tie_seed(mut self, seed: u64) -> Scenario {
        self.tie_seed = seed;
        self
    }

    /// Enables/disables per-flow trace records (default on). Disable
    /// for throughput benchmarking; both modes must use the same
    /// setting for a fair comparison.
    pub fn with_trace(mut self, trace: bool) -> Scenario {
        self.trace = trace;
        self
    }

    /// Installs a telemetry recorder: flow spans come from the
    /// simulating engine(s); parallel runs additionally emit
    /// [`Phase::Partition`] spans (one per partition lane) and
    /// `partition.rebalance` instants.
    pub fn with_recorder(mut self, rec: Recorder) -> Scenario {
        self.recorder = Some(rec);
        self
    }

    /// Installs an anomaly sink: each partition merge a parallel run
    /// performs signals [`TriggerClass::RebalanceStorm`] at the merge's
    /// virtual time, so storms of bridging flows (a workload whose
    /// decomposition keeps collapsing) produce a black-box dump.
    pub fn with_anomalies(mut self, sink: Arc<AnomalyEngine>) -> Scenario {
        self.anomalies = Some(sink);
        self
    }

    /// Number of declared flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Decomposes the declared workload without running it.
    pub fn partition_plan(&self) -> PartitionPlan {
        let routes: Vec<(SimTime, Vec<mpx_topo::LinkId>)> = self
            .flows
            .iter()
            .map(|(at, s)| (SimTime::from_secs(*at), s.route.clone()))
            .collect();
        partition_scenario(self.topo.link_count(), &routes, &self.faults)
    }

    /// Global flow ids by issue order: `ids[decl] = rank of (time, decl)`.
    fn global_ids(&self) -> Vec<u64> {
        let mut order: Vec<usize> = (0..self.flows.len()).collect();
        order.sort_by_key(|&i| (SimTime::from_secs(self.flows[i].0), i));
        let mut ids = vec![0u64; self.flows.len()];
        for (rank, &decl) in order.iter().enumerate() {
            ids[decl] = rank as u64;
        }
        ids
    }

    /// Specs with jitter factors folded in, drawn in global-id order.
    fn jittered_specs(&self, ids: &[u64]) -> Vec<FlowSpec> {
        let mut specs: Vec<FlowSpec> = self.flows.iter().map(|(_, s)| s.clone()).collect();
        if let Some(model) = self.jitter {
            let mut rng = StdRng::seed_from_u64(model.seed);
            let mut factors = vec![1.0f64; specs.len()];
            // Draw in global issue order — the order a serial engine
            // with an installed jitter model would consume the stream.
            let mut by_id: Vec<usize> = (0..specs.len()).collect();
            by_id.sort_by_key(|&i| ids[i]);
            for &decl in &by_id {
                factors[decl] = 1.0 + rng.gen_range(-model.spread..=model.spread);
            }
            for (spec, f) in specs.iter_mut().zip(factors) {
                spec.latency_factor *= f;
            }
        }
        specs
    }

    /// Runs the scenario on one engine — the determinism oracle.
    pub fn run_serial(&self) -> ScenarioReport {
        let plan = self.partition_plan();
        let ids = self.global_ids();
        let specs = self.jittered_specs(&ids);
        let eng = Engine::with_tracing(self.topo.clone(), self.trace);
        if let Some(rec) = &self.recorder {
            eng.set_recorder(rec.clone());
        }
        let assigned = schedule_flows(&eng, &self.flows, &specs, &ids);
        FaultInjector::install(&eng, &self.faults);
        eng.run_until_idle();
        // The engine must have assigned exactly the precomputed global
        // ids — this is what lets partitions reuse them.
        for &(local, global) in assigned.lock().iter() {
            assert_eq!(
                local, global,
                "serial flow id diverged from issue-order rank"
            );
        }
        let mut stats = eng.stats();
        apply_partition_counters(&mut stats, &plan);
        let mut trace = eng.take_trace();
        sort_canonical(&mut trace, self.tie_seed);
        ScenarioReport {
            stats,
            trace,
            partitions: Vec::new(),
        }
    }

    /// Runs the scenario partitioned across `workers` threads. Any
    /// `workers >= 1` produces the same (bit-identical) result; the
    /// count only bounds concurrency.
    pub fn run_parallel(&self, workers: usize) -> ScenarioReport {
        assert!(workers >= 1, "need at least one worker");
        let plan = self.partition_plan();
        let ids = self.global_ids();
        let specs = self.jittered_specs(&ids);
        // Validate the full plan once up front (sub-plans revalidate
        // cheaply); keeps error surfaces identical to serial.
        let issues = self.faults.validate(&self.topo);
        assert!(issues.is_empty(), "invalid fault plan: {issues:?}");

        struct Prepared {
            eng: Engine,
            assigned: Arc<Mutex<Vec<(u64, u64)>>>,
        }
        let prepared: Vec<Prepared> = plan
            .parts
            .iter()
            .map(|part| {
                let eng = Engine::with_tracing(self.topo.clone(), self.trace);
                if let Some(rec) = &self.recorder {
                    eng.set_recorder(rec.clone());
                }
                let flows: Vec<(Secs, FlowSpec)> =
                    part.flows.iter().map(|&i| self.flows[i].clone()).collect();
                let part_specs: Vec<FlowSpec> =
                    part.flows.iter().map(|&i| specs[i].clone()).collect();
                let part_ids: Vec<u64> = part.flows.iter().map(|&i| ids[i]).collect();
                let assigned = schedule_flows(&eng, &flows, &part_specs, &part_ids);
                let sub = FaultPlan {
                    events: part.faults.iter().map(|&j| self.faults.events[j]).collect(),
                };
                FaultInjector::install(&eng, &sub);
                Prepared { eng, assigned }
            })
            .collect();

        // Worker pool: threads claim partitions off a shared cursor.
        // Partition order is largest-first (see `partition_scenario`),
        // so the long pole starts immediately; results are read back in
        // partition order afterwards, so scheduling cannot perturb the
        // merge.
        let cursor = AtomicUsize::new(0);
        let pool = workers.min(prepared.len()).max(1);
        std::thread::scope(|s| {
            for _ in 0..pool {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = prepared.get(i) else { break };
                    p.eng.run_until_idle();
                });
            }
        });

        // Deterministic merge, in partition order.
        let nlinks = self.topo.link_count();
        let mut stats = empty_stats(nlinks);
        let mut trace = Vec::new();
        let mut partitions = Vec::with_capacity(prepared.len());
        for (part, p) in plan.parts.iter().zip(&prepared) {
            let sub = p.eng.stats();
            let local_to_global: std::collections::HashMap<u64, u64> =
                p.assigned.lock().iter().copied().collect();
            let mut sub_trace = p.eng.take_trace();
            for r in &mut sub_trace {
                let g = *local_to_global
                    .get(&r.flow.0)
                    .expect("trace record for an unmapped flow");
                r.flow = crate::engine::FlowId(g);
            }
            trace.append(&mut sub_trace);
            partitions.push(PartitionRun {
                root: part.root,
                flows: part.flows.len(),
                events_processed: sub.events_processed,
                now: sub.now,
            });
            accumulate_stats(&mut stats, &sub);
        }
        apply_partition_counters(&mut stats, &plan);
        sort_canonical(&mut trace, self.tie_seed);

        if let Some(rec) = &self.recorder {
            for (k, pr) in partitions.iter().enumerate() {
                rec.span(
                    Phase::Partition,
                    format!("partition:{}", pr.root),
                    format!("p{k} ({} flows)", pr.flows),
                    0.0,
                    pr.now.as_secs(),
                    format!("{} events", pr.events_processed),
                );
            }
            for &(at, loser, winner) in &plan.merges {
                rec.instant(
                    Phase::Partition,
                    "partitions",
                    format!("partition.rebalance {loser}->{winner}"),
                    at.as_secs(),
                    "bridging flow merged partitions",
                );
            }
        }
        if let Some(sink) = &self.anomalies {
            for &(at, loser, winner) in &plan.merges {
                sink.signal(
                    TriggerClass::RebalanceStorm,
                    at.as_secs(),
                    None,
                    None,
                    &format!("partition.rebalance {loser}->{winner}"),
                );
            }
        }

        ScenarioReport {
            stats,
            trace,
            partitions,
        }
    }
}

/// Per-partition execution summary (parallel runs only).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionRun {
    /// Partition root (a link index).
    pub root: usize,
    /// Flows the partition simulated.
    pub flows: usize,
    /// Events its private queue processed.
    pub events_processed: u64,
    /// Its final virtual clock.
    pub now: SimTime,
}

/// Result of a scenario run: merged stats (with partition counters),
/// the canonical-order trace, and — for parallel runs — per-partition
/// summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Merged counters; `partitions`/`rebalances`/`cross_component_events`
    /// are filled in both modes from the same decomposition.
    pub stats: StatsSnapshot,
    /// Completed flows in canonical order: `(completed, splitmix64(seed
    /// ^ flow), flow)`. Empty when tracing is off.
    pub trace: Vec<TraceRecord>,
    /// Per-partition summaries (empty for serial runs).
    pub partitions: Vec<PartitionRun>,
}

/// Compares two reports for bit-identical equivalence. Returns `None`
/// when equal, otherwise a human-readable description of the first
/// divergence. Floats (per-link byte counters) are compared by bit
/// pattern, not tolerance.
pub fn equivalence_diff(a: &ScenarioReport, b: &ScenarioReport) -> Option<String> {
    let sa = &a.stats;
    let sb = &b.stats;
    macro_rules! check {
        ($field:ident) => {
            if sa.$field != sb.$field {
                return Some(format!(
                    "stats.{}: {:?} vs {:?}",
                    stringify!($field),
                    sa.$field,
                    sb.$field
                ));
            }
        };
    }
    check!(now);
    check!(flows_issued);
    check!(flows_completed);
    check!(events_processed);
    check!(events_scheduled);
    check!(faults_fired);
    check!(flows_stalled);
    check!(links_down);
    check!(partitions);
    check!(rebalances);
    check!(cross_component_events);
    if sa.links.len() != sb.links.len() {
        return Some(format!(
            "link table size: {} vs {}",
            sa.links.len(),
            sb.links.len()
        ));
    }
    for (l, (la, lb)) in sa.links.iter().zip(&sb.links).enumerate() {
        if la.flows != lb.flows {
            return Some(format!("link {l} flows: {} vs {}", la.flows, lb.flows));
        }
        if la.bytes.to_bits() != lb.bytes.to_bits() {
            return Some(format!(
                "link {l} bytes differ in bits: {} vs {}",
                la.bytes, lb.bytes
            ));
        }
    }
    if a.trace.len() != b.trace.len() {
        return Some(format!(
            "trace length: {} vs {}",
            a.trace.len(),
            b.trace.len()
        ));
    }
    for (i, (ra, rb)) in a.trace.iter().zip(&b.trace).enumerate() {
        if ra != rb {
            return Some(format!("trace[{i}]: {ra:?} vs {rb:?}"));
        }
    }
    None
}

/// SplitMix64 — the seeded tie-break for merging simultaneous
/// completions from different partitions into one canonical order.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sort_canonical(trace: &mut [TraceRecord], seed: u64) {
    trace.sort_by_key(|r| (r.completed, splitmix64(seed ^ r.flow.0), r.flow.0));
}

/// Schedules `flows` (declaration order) on `eng` as issue timers,
/// recording `(engine-local id, global id)` pairs as they are assigned.
fn schedule_flows(
    eng: &Engine,
    flows: &[(Secs, FlowSpec)],
    specs: &[FlowSpec],
    ids: &[u64],
) -> Arc<Mutex<Vec<(u64, u64)>>> {
    let assigned = Arc::new(Mutex::new(Vec::with_capacity(flows.len())));
    for ((at, _), (spec, &gid)) in flows.iter().zip(specs.iter().zip(ids)) {
        let spec = spec.clone();
        let sink = assigned.clone();
        eng.schedule_at(
            SimTime::from_secs(*at),
            OnComplete::Call(Box::new(move |ctx| {
                let local = ctx.start_flow(spec, OnComplete::Nothing);
                sink.lock().push((local.0, gid));
            })),
        );
    }
    assigned
}

fn empty_stats(nlinks: usize) -> StatsSnapshot {
    StatsSnapshot {
        now: SimTime::ZERO,
        links: vec![LinkStats::default(); nlinks],
        flows_issued: 0,
        flows_completed: 0,
        events_processed: 0,
        events_scheduled: 0,
        faults_fired: 0,
        flows_stalled: 0,
        links_down: 0,
        partitions: 0,
        rebalances: 0,
        cross_component_events: 0,
    }
}

/// Folds a partition's counters into the merged snapshot. Each link is
/// owned by exactly one partition, so per-link f64 byte totals pick up
/// exactly one non-zero contribution — adding the others' zeros cannot
/// change the bit pattern.
fn accumulate_stats(into: &mut StatsSnapshot, sub: &StatsSnapshot) {
    into.now = into.now.max(sub.now);
    for (a, b) in into.links.iter_mut().zip(&sub.links) {
        a.bytes += b.bytes;
        a.flows += b.flows;
    }
    into.flows_issued += sub.flows_issued;
    into.flows_completed += sub.flows_completed;
    into.events_processed += sub.events_processed;
    into.events_scheduled += sub.events_scheduled;
    into.faults_fired += sub.faults_fired;
    into.flows_stalled += sub.flows_stalled;
    into.links_down += sub.links_down;
}

fn apply_partition_counters(stats: &mut StatsSnapshot, plan: &PartitionPlan) {
    stats.partitions = plan.partitions;
    stats.rebalances = plan.rebalances;
    stats.cross_component_events = plan.cross_component_events;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use mpx_topo::presets;

    fn two_pair_scenario() -> Scenario {
        let topo = Arc::new(presets::synthetic_default());
        let g = topo.gpus();
        let l01 = topo.link_between(g[0], g[1]).unwrap().id;
        let l23 = topo.link_between(g[2], g[3]).unwrap().id;
        Scenario::new(topo)
            .flow(FlowSpec::new(vec![l01], 1 << 24).labeled("a"))
            .flow(FlowSpec::new(vec![l01], 1 << 22).labeled("b"))
            .flow(FlowSpec::new(vec![l23], 1 << 23).labeled("c"))
    }

    #[test]
    fn parallel_matches_serial_on_disjoint_pairs() {
        let sc = two_pair_scenario();
        let serial = sc.run_serial();
        for workers in [1, 2, 4, 8] {
            let par = sc.run_parallel(workers);
            assert_eq!(equivalence_diff(&serial, &par), None, "workers={workers}");
            assert_eq!(par.partitions.len(), 2);
        }
        assert_eq!(serial.stats.partitions, 2);
        assert_eq!(serial.stats.flows_completed, 3);
    }

    #[test]
    fn per_partition_events_sum_to_serial_total() {
        let sc = two_pair_scenario();
        let serial = sc.run_serial();
        let par = sc.run_parallel(4);
        let sum: u64 = par.partitions.iter().map(|p| p.events_processed).sum();
        assert_eq!(sum, serial.stats.events_processed);
        assert_eq!(par.stats.events_scheduled, serial.stats.events_scheduled);
    }

    #[test]
    fn jitter_is_partition_invariant() {
        let topo = Arc::new(presets::synthetic_default());
        let g = topo.gpus();
        let l01 = topo.link_between(g[0], g[1]).unwrap().id;
        let l23 = topo.link_between(g[2], g[3]).unwrap().id;
        let base = Scenario::new(topo)
            .flow(FlowSpec::new(vec![l01], 1 << 20))
            .flow(FlowSpec::new(vec![l23], 1 << 20))
            .flow_at(1e-3, FlowSpec::new(vec![l01], 1 << 21));
        let sc = base.clone().with_jitter(JitterModel {
            seed: 9,
            spread: 0.3,
        });
        let serial = sc.run_serial();
        let par = sc.run_parallel(2);
        assert_eq!(equivalence_diff(&serial, &par), None);
        // And the jitter actually did something: at least one activation
        // time differs from the unjittered run.
        let plain = base.run_serial();
        assert!(serial
            .trace
            .iter()
            .zip(&plain.trace)
            .any(|(a, b)| a.activated != b.activated));
    }

    #[test]
    fn kill_during_merge_routes_to_merged_partition() {
        // Satellite regression: partitions A (pair 0-1) and B (pair
        // 2-3) run separately; a kill hits B's link at t=0.3 while a
        // bridging flow declared at t=0.4 forces A+B to merge. The kill
        // must stall exactly B's flows (and the bridge, which crosses
        // the dead link) in both modes, bit-identically.
        let topo = Arc::new(presets::synthetic_default());
        let g = topo.gpus();
        let l01 = topo.link_between(g[0], g[1]).unwrap().id;
        let l23 = topo.link_between(g[2], g[3]).unwrap().id;
        let n = 50_000_000_000usize; // ~1 s at 50 GB/s
        let sc = Scenario::new(topo)
            .flow(FlowSpec::new(vec![l01], n).labeled("a"))
            .flow(FlowSpec::new(vec![l23], n).labeled("b"))
            .flow_at(0.4, FlowSpec::new(vec![l01, l23], n / 4).labeled("bridge"))
            .with_faults(FaultPlan::empty().with(0.3, l23, FaultKind::Kill));
        let serial = sc.run_serial();
        for workers in [1, 2, 8] {
            let par = sc.run_parallel(workers);
            assert_eq!(equivalence_diff(&serial, &par), None, "workers={workers}");
        }
        assert_eq!(serial.stats.partitions, 1, "bridge must merge A and B");
        assert_eq!(serial.stats.rebalances, 1);
        assert!(serial.stats.cross_component_events >= 2);
        // Flow `a` completes; `b` and `bridge` stall on the dead link.
        assert_eq!(serial.stats.flows_completed, 1);
        assert_eq!(serial.stats.flows_stalled, 2);
        assert_eq!(serial.trace.len(), 1);
        assert_eq!(serial.trace[0].label, "a");
    }

    #[test]
    fn canonical_order_breaks_simultaneous_ties_by_seed() {
        // Two identical flows in different partitions complete at the
        // same instant; the tie-break must be deterministic and
        // seed-dependent.
        let topo = Arc::new(presets::synthetic_default());
        let g = topo.gpus();
        let l01 = topo.link_between(g[0], g[1]).unwrap().id;
        let l23 = topo.link_between(g[2], g[3]).unwrap().id;
        let build = |seed| {
            Scenario::new(topo.clone())
                .with_tie_seed(seed)
                .flow(FlowSpec::new(vec![l01], 1 << 20).labeled("x"))
                .flow(FlowSpec::new(vec![l23], 1 << 20).labeled("y"))
        };
        for seed in [0u64, 1, 7, 1234] {
            let sc = build(seed);
            let serial = sc.run_serial();
            let par = sc.run_parallel(2);
            assert_eq!(equivalence_diff(&serial, &par), None, "seed={seed}");
            assert_eq!(
                serial.trace[0].completed, serial.trace[1].completed,
                "test premise: completions must be simultaneous"
            );
        }
        // Some seed must flip the order relative to seed 0 (splitmix64
        // over two ids is not constant across seeds).
        let base: Vec<String> = build(0)
            .run_serial()
            .trace
            .iter()
            .map(|r| r.label.clone())
            .collect();
        let flipped = (1..64u64).any(|s| {
            let t: Vec<String> = build(s)
                .run_serial()
                .trace
                .iter()
                .map(|r| r.label.clone())
                .collect();
            t != base
        });
        assert!(flipped, "tie-break ignores the seed");
    }

    #[test]
    fn empty_scenario_runs() {
        let topo = Arc::new(presets::synthetic_default());
        let sc = Scenario::new(topo);
        let serial = sc.run_serial();
        let par = sc.run_parallel(8);
        assert_eq!(equivalence_diff(&serial, &par), None);
        assert_eq!(serial.stats.partitions, 0);
    }

    #[test]
    fn recorder_gets_partition_spans_and_rebalance_instants() {
        let topo = Arc::new(presets::synthetic_default());
        let g = topo.gpus();
        let l01 = topo.link_between(g[0], g[1]).unwrap().id;
        let l23 = topo.link_between(g[2], g[3]).unwrap().id;
        let rec = Recorder::new();
        let sc = Scenario::new(topo)
            .with_recorder(rec.clone())
            .flow(FlowSpec::new(vec![l01], 1 << 20))
            .flow(FlowSpec::new(vec![l23], 1 << 20))
            .flow_at(1e-4, FlowSpec::new(vec![l01, l23], 1 << 20));
        let par = sc.run_parallel(2);
        assert_eq!(par.stats.rebalances, 1);
        let events = rec.drain();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.phase() == Phase::Partition)
            .collect();
        assert!(
            spans.iter().any(|e| e.track().starts_with("partition:")),
            "no partition lane spans: {spans:?}"
        );
        assert!(
            spans.iter().any(|e| e.name().contains("rebalance")),
            "no rebalance instant: {spans:?}"
        );
    }

    #[test]
    fn anomaly_sink_sees_rebalance_merges() {
        let topo = Arc::new(presets::synthetic_default());
        let g = topo.gpus();
        let l01 = topo.link_between(g[0], g[1]).unwrap().id;
        let l23 = topo.link_between(g[2], g[3]).unwrap().id;
        // Threshold 1 so a single merge already counts as a storm —
        // the burst arithmetic itself is covered in mpx-obs.
        let sink = Arc::new(AnomalyEngine::new(
            mpx_obs::FlightRecorder::new(256),
            mpx_obs::AnomalyConfig {
                rebalance_storm: 1,
                ..Default::default()
            },
        ));
        let sc = Scenario::new(topo)
            .with_anomalies(sink.clone())
            .flow(FlowSpec::new(vec![l01], 1 << 20))
            .flow(FlowSpec::new(vec![l23], 1 << 20))
            .flow_at(1e-4, FlowSpec::new(vec![l01, l23], 1 << 20));
        let par = sc.run_parallel(2);
        assert_eq!(par.stats.rebalances, 1);
        assert_eq!(sink.fired(), 1);
        let dumps = sink.dumps();
        assert_eq!(dumps[0].trigger, "partition.rebalance-storm");
        assert!(dumps[0].cause.contains("partition.rebalance"));
    }
}
