//! Post-run analysis of engine counters and traces: link utilization,
//! path residency, and trace summarization — the reporting layer behind
//! the pipeline-schedule example and the bench binaries.

use crate::engine::{StatsSnapshot, TraceRecord};
use crate::time::SimTime;
use mpx_topo::Topology;

/// One link's utilization over an interval.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUtilization {
    /// Link index (into `Topology::links`).
    pub link: usize,
    /// Bytes carried.
    pub bytes: f64,
    /// Mean fraction of the link's capacity used over the interval,
    /// clamped to [0.0, 1.0] (rounding in the byte accounting could
    /// otherwise nudge a saturated link epsilon past 1.0).
    pub utilization: f64,
    /// Flows that crossed the link.
    pub flows: u64,
}

/// Computes per-link utilization over `[0, snapshot.now]`.
///
/// Links that carried nothing are included with zero utilization so
/// callers can spot idle capacity (the paper's Section-3 "under-utilized
/// paths").
pub fn link_utilization(topo: &Topology, snapshot: &StatsSnapshot) -> Vec<LinkUtilization> {
    let horizon = snapshot.now.as_secs();
    topo.links
        .iter()
        .zip(&snapshot.links)
        .map(|(link, stats)| LinkUtilization {
            link: link.id.index(),
            bytes: stats.bytes,
            utilization: if horizon > 0.0 {
                (stats.bytes / (link.bandwidth * horizon)).min(1.0)
            } else {
                0.0
            },
            flows: stats.flows,
        })
        .collect()
}

/// The most-utilized link, if any traffic moved.
pub fn bottleneck_link(topo: &Topology, snapshot: &StatsSnapshot) -> Option<LinkUtilization> {
    link_utilization(topo, snapshot)
        .into_iter()
        .filter(|u| u.bytes > 0.0)
        .max_by(|a, b| a.utilization.partial_cmp(&b.utilization).expect("finite"))
}

/// Aggregate description of a flow trace: span, bytes, and concurrency.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of flows.
    pub flows: usize,
    /// First activation.
    pub start: SimTime,
    /// Last completion.
    pub end: SimTime,
    /// Total payload bytes (each flow counted once).
    pub bytes: usize,
    /// Time-averaged number of simultaneously active flows.
    pub mean_concurrency: f64,
    /// Peak number of simultaneously active flows.
    pub peak_concurrency: usize,
}

/// Summarizes a trace (empty traces yield a zeroed summary).
pub fn summarize_trace(trace: &[TraceRecord]) -> TraceSummary {
    if trace.is_empty() {
        return TraceSummary {
            flows: 0,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            bytes: 0,
            mean_concurrency: 0.0,
            peak_concurrency: 0,
        };
    }
    let start = trace.iter().map(|r| r.activated).min().expect("non-empty");
    let end = trace.iter().map(|r| r.completed).max().expect("non-empty");
    let bytes = trace.iter().map(|r| r.bytes).sum();

    // Sweep activation/completion edges for concurrency.
    let mut edges: Vec<(SimTime, i64)> = Vec::with_capacity(trace.len() * 2);
    for r in trace {
        edges.push((r.activated, 1));
        edges.push((r.completed, -1));
    }
    edges.sort_unstable_by_key(|&(t, delta)| (t, delta));
    let mut active = 0i64;
    let mut peak = 0i64;
    let mut weighted = 0.0f64;
    let mut last = start;
    for (t, delta) in edges {
        weighted += active as f64 * t.secs_since(last);
        active += delta;
        peak = peak.max(active);
        last = t;
    }
    let span = end.secs_since(start);
    TraceSummary {
        flows: trace.len(),
        start,
        end,
        bytes,
        mean_concurrency: if span > 0.0 { weighted / span } else { 0.0 },
        peak_concurrency: peak as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, FlowSpec, OnComplete};
    use mpx_topo::presets;
    use std::sync::Arc;

    fn run_two_flows() -> (Arc<mpx_topo::Topology>, Engine) {
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::with_tracing(topo.clone(), true);
        let gpus = topo.gpus();
        let l01 = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        let l02 = topo.link_between(gpus[0], gpus[2]).unwrap().id;
        eng.start_flow(FlowSpec::new(vec![l01], 50_000_000), OnComplete::Nothing);
        eng.start_flow(FlowSpec::new(vec![l02], 25_000_000), OnComplete::Nothing);
        eng.run_until_idle();
        (topo, eng)
    }

    #[test]
    fn utilization_reflects_link_occupancy() {
        let (topo, eng) = run_two_flows();
        let stats = eng.stats();
        let report = link_utilization(&topo, &stats);
        let gpus = topo.gpus();
        let l01 = topo.link_between(gpus[0], gpus[1]).unwrap().id.index();
        let l02 = topo.link_between(gpus[0], gpus[2]).unwrap().id.index();
        // Flow on l01 is twice the bytes of l02, same rate, so the run
        // lasts as long as l01's flow: l01 ~100% busy, l02 ~50%.
        assert!(report[l01].utilization > 0.95, "{:?}", report[l01]);
        assert!(
            (report[l02].utilization - 0.5).abs() < 0.05,
            "{:?}",
            report[l02]
        );
        // Idle links are reported with zero use.
        let idle = report.iter().filter(|u| u.bytes == 0.0).count();
        assert!(idle > 0);
    }

    #[test]
    fn zero_horizon_snapshot_reports_zero_utilization() {
        // A snapshot taken before virtual time moved must not divide by
        // the zero-length horizon.
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::new(topo.clone());
        let stats = eng.stats();
        assert_eq!(stats.now.as_secs(), 0.0);
        let report = link_utilization(&topo, &stats);
        assert_eq!(report.len(), topo.link_count());
        for u in &report {
            assert_eq!(u.utilization, 0.0, "{u:?}");
            assert_eq!(u.bytes, 0.0);
        }
        assert!(bottleneck_link(&topo, &stats).is_none());
    }

    #[test]
    fn idle_links_are_included_with_zero_utilization() {
        let (topo, eng) = run_two_flows();
        let report = link_utilization(&topo, &eng.stats());
        // Every topology link appears exactly once, busy or not.
        assert_eq!(report.len(), topo.link_count());
        let idle: Vec<_> = report.iter().filter(|u| u.bytes == 0.0).collect();
        assert!(!idle.is_empty());
        for u in idle {
            assert_eq!(u.utilization, 0.0, "{u:?}");
            assert_eq!(u.flows, 0, "{u:?}");
        }
    }

    #[test]
    fn utilization_is_clamped_to_one() {
        let (topo, eng) = run_two_flows();
        for u in link_utilization(&topo, &eng.stats()) {
            assert!(u.utilization <= 1.0, "{u:?}");
        }
        // A saturated link reports exactly ≤1.0 even when byte rounding
        // would push the raw ratio past capacity: synthesize a snapshot
        // claiming slightly more bytes than the link could carry.
        let mut stats = eng.stats();
        let l = 0;
        stats.links[l].bytes = topo.links[l].bandwidth * stats.now.as_secs() * 1.001;
        let report = link_utilization(&topo, &stats);
        assert_eq!(report[l].utilization, 1.0, "{:?}", report[l]);
    }

    #[test]
    fn bottleneck_tie_break_is_deterministic() {
        // Two links with bit-identical utilization: max_by keeps the
        // *last* maximal element, i.e. the higher link index. Pin that
        // behaviour so report consumers can rely on it.
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::new(topo.clone());
        let gpus = topo.gpus();
        let l01 = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        let l02 = topo.link_between(gpus[0], gpus[2]).unwrap().id;
        assert_eq!(
            topo.links[l01.index()].bandwidth,
            topo.links[l02.index()].bandwidth
        );
        // Same bytes over equal-capacity links → equal utilization.
        eng.start_flow(FlowSpec::new(vec![l01], 50_000_000), OnComplete::Nothing);
        eng.start_flow(FlowSpec::new(vec![l02], 50_000_000), OnComplete::Nothing);
        eng.run_until_idle();
        let stats = eng.stats();
        let report = link_utilization(&topo, &stats);
        assert_eq!(
            report[l01.index()].utilization,
            report[l02.index()].utilization
        );
        let b = bottleneck_link(&topo, &stats).expect("traffic moved");
        assert_eq!(b.link, l01.index().max(l02.index()));
    }

    #[test]
    fn bottleneck_is_the_busy_link() {
        let (topo, eng) = run_two_flows();
        let gpus = topo.gpus();
        let l01 = topo.link_between(gpus[0], gpus[1]).unwrap().id.index();
        let b = bottleneck_link(&topo, &eng.stats()).expect("traffic moved");
        assert_eq!(b.link, l01);
    }

    #[test]
    fn trace_summary_counts_concurrency() {
        let (_, eng) = run_two_flows();
        let trace = eng.take_trace();
        let s = summarize_trace(&trace);
        assert_eq!(s.flows, 2);
        assert_eq!(s.bytes, 75_000_000);
        assert_eq!(s.peak_concurrency, 2);
        // Both run together for the first half, one alone after:
        // mean concurrency = (2·t + 1·t) / 2t = 1.5.
        assert!((s.mean_concurrency - 1.5).abs() < 0.05, "{s:?}");
        assert!(s.start < s.end);
    }

    #[test]
    fn empty_trace_summary_is_zeroed() {
        let s = summarize_trace(&[]);
        assert_eq!(s.flows, 0);
        assert_eq!(s.peak_concurrency, 0);
        assert_eq!(s.mean_concurrency, 0.0);
    }
}

/// Serializes a flow trace in Chrome trace-event format (the JSON array
/// flavour), loadable in `chrome://tracing` or Perfetto. Each flow
/// becomes a complete event (`ph: "X"`); its lane (`tid`) is derived
/// from the label's `pN`/`leg` structure so multi-path transfers render
/// one row per path and leg, mirroring the paper's Fig. 2(b).
pub fn trace_to_chrome_json(trace: &[TraceRecord]) -> String {
    fn lane(label: &str) -> String {
        // "xfer0.p1.c3.leg2" → "xfer0.p1.leg2"; labels without the
        // chunk field pass through unchanged.
        let mut parts: Vec<&str> = label.split('.').collect();
        parts.retain(|p| !(p.starts_with('c') && p[1..].bytes().all(|b| b.is_ascii_digit())));
        parts.join(".")
    }
    let mut out = String::from("[\n");
    let mut lanes: Vec<String> = Vec::new();
    for r in trace {
        let lane_name = lane(&r.label);
        let tid = match lanes.iter().position(|l| *l == lane_name) {
            Some(i) => i,
            None => {
                lanes.push(lane_name.clone());
                lanes.len() - 1
            }
        };
        let dur_us = r.completed.secs_since(r.activated) * 1e6;
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"flow\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \
             \"args\": {{\"bytes\": {}, \"lane\": \"{}\"}}}},\n",
            r.label,
            tid,
            r.activated.as_secs() * 1e6,
            dur_us,
            r.bytes,
            lane_name
        ));
    }
    // Lane-name metadata events.
    for (i, l) in lanes.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {i}, \
             \"args\": {{\"name\": \"{l}\"}}}},\n"
        ));
    }
    // Trailing comma is legal in the chrome trace array flavour, but be
    // tidy anyway.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod chrome_tests {
    use super::*;
    use crate::engine::{Engine, FlowSpec, OnComplete};
    use mpx_topo::presets;
    use std::sync::Arc;

    #[test]
    fn chrome_export_is_valid_json_with_lanes() {
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::with_tracing(topo.clone(), true);
        let gpus = topo.gpus();
        let l01 = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        let l02 = topo.link_between(gpus[0], gpus[2]).unwrap().id;
        eng.start_flow(
            FlowSpec::new(vec![l01], 1 << 20).labeled("xfer0.p0.direct"),
            OnComplete::Nothing,
        );
        eng.start_flow(
            FlowSpec::new(vec![l02], 1 << 20).labeled("xfer0.p1.c0.leg1"),
            OnComplete::Nothing,
        );
        eng.start_flow(
            FlowSpec::new(vec![l02], 1 << 20).labeled("xfer0.p1.c1.leg1"),
            OnComplete::Nothing,
        );
        eng.run_until_idle();
        let json = trace_to_chrome_json(&eng.take_trace());
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed.as_array().unwrap();
        // 3 flows + 2 lane-metadata events (chunks collapse to one lane).
        assert_eq!(events.len(), 5, "{json}");
        let lanes: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"] == "M")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert!(lanes.contains(&"xfer0.p0.direct"));
        assert!(lanes.contains(&"xfer0.p1.leg1"));
        // Durations are positive.
        for e in events.iter().filter(|e| e["ph"] == "X") {
            assert!(e["dur"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn chrome_export_empty_trace() {
        let json = trace_to_chrome_json(&[]);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }
}
