//! # mpx-sim — discrete-event fabric simulator
//!
//! Replaces the physical multi-GPU node the paper measures on. Transfers
//! are *fluid flows* over the directed links of an [`mpx_topo::Topology`];
//! concurrent flows share links max-min fairly, which is what produces the
//! contention phenomena the paper reports (window-size effects,
//! host-staged bidirectional degradation) without any per-experiment
//! tuning.
//!
//! Two ways to drive a simulation:
//!
//! * **Callback-structured** — inject flows/timers with
//!   [`Engine::start_flow`] / [`Engine::schedule_in`] and drain with
//!   [`Engine::run_until_idle`]. Deterministic; used by unit tests and the
//!   GPU stream layer.
//! * **Thread-structured** — register OS threads as simulated actors
//!   ([`Engine::register_thread`]) and write straight-line blocking code
//!   ([`SimThread::sleep`], [`SimThread::wait`], [`SimThread::transfer`]).
//!   Virtual time advances only when every registered thread is blocked.
//!   This is how `mpx-mpi` runs ranks.
//!
//! ```
//! use std::sync::Arc;
//! use mpx_sim::{Engine, FlowSpec, OnComplete};
//! use mpx_topo::presets;
//!
//! let topo = Arc::new(presets::beluga());
//! let eng = Engine::new(topo.clone());
//! let gpus = topo.gpus();
//! let link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
//! eng.start_flow(FlowSpec::new(vec![link], 64 << 20), OnComplete::Nothing);
//! eng.run_until_idle();
//! assert!(eng.now().as_secs() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod fairness;
pub mod fault;
pub mod parallel;
pub mod partition;
pub mod stats;
pub mod time;
pub mod waker;

pub use engine::{
    Ctx, Engine, EventFn, FlowId, FlowSpec, JitterModel, LinkStats, OnComplete, SimThread,
    StatsSnapshot, TraceRecord,
};
pub use fairness::{max_min_rates, max_min_rates_fast, FairShareScratch, FlowDemand};
pub use fault::{plan_horizon, FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use parallel::{equivalence_diff, PartitionRun, Scenario, ScenarioReport};
pub use partition::{partition_scenario, Partition, PartitionPlan, Partitioner};
pub use stats::{
    bottleneck_link, link_utilization, summarize_trace, trace_to_chrome_json, LinkUtilization,
    TraceSummary,
};
pub use time::SimTime;
pub use waker::Waker;
