//! Wakers: one-shot (but reusable) signals connecting simulation events to
//! blocked threads.
//!
//! A waker's state is only ever mutated while holding the engine lock, so
//! the atomics below never race; they exist to make [`Waker`] `Sync`
//! without `unsafe`.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const IDLE: u8 = 0;
const WAITING: u8 = 1;
const SIGNALED: u8 = 2;

#[derive(Debug)]
pub(crate) struct WakerInner {
    state: AtomicU8,
    name: String,
}

/// A signal a simulated thread can block on and simulation events can
/// fire. Cloning shares the underlying signal.
#[derive(Clone)]
pub struct Waker {
    pub(crate) inner: Arc<WakerInner>,
}

impl Waker {
    /// Creates a fresh, unsignaled waker. The name shows up in deadlock
    /// diagnostics.
    pub fn new(name: impl Into<String>) -> Waker {
        Waker {
            inner: Arc::new(WakerInner {
                state: AtomicU8::new(IDLE),
                name: name.into(),
            }),
        }
    }

    /// Debug name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// True if the waker has been signaled and not yet consumed.
    /// (Engine-lock protected in practice; safe to read anywhere.)
    pub fn is_signaled(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) == SIGNALED
    }

    // --- engine-lock-protected transitions -------------------------------

    /// Marks the owner as waiting; returns `true` if the waker was already
    /// signaled (in which case it is consumed and the caller must not
    /// block).
    pub(crate) fn begin_wait(&self) -> bool {
        match self.inner.state.load(Ordering::Acquire) {
            SIGNALED => {
                self.inner.state.store(IDLE, Ordering::Release);
                true
            }
            _ => {
                self.inner.state.store(WAITING, Ordering::Release);
                false
            }
        }
    }

    /// Consumes a signal delivered while waiting; returns `true` if the
    /// wait is over.
    pub(crate) fn try_consume(&self) -> bool {
        if self.inner.state.load(Ordering::Acquire) == SIGNALED {
            self.inner.state.store(IDLE, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Fires the signal; returns `true` if the owner was blocked on it
    /// (the caller must then decrement the engine's blocked count).
    pub(crate) fn fire(&self) -> bool {
        let was = self.inner.state.swap(SIGNALED, Ordering::AcqRel);
        was == WAITING
    }
}

impl fmt::Debug for Waker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Waker")
            .field("name", &self.inner.name)
            .field("state", &self.inner.state.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_then_wait_consumes_immediately() {
        let w = Waker::new("t");
        assert!(!w.fire(), "owner was not waiting");
        assert!(w.is_signaled());
        assert!(w.begin_wait(), "pre-signaled wait returns immediately");
        assert!(!w.is_signaled(), "signal consumed");
    }

    #[test]
    fn wait_then_fire_reports_blocked_owner() {
        let w = Waker::new("t");
        assert!(!w.begin_wait());
        assert!(w.fire(), "owner was waiting");
        assert!(w.try_consume());
        assert!(!w.try_consume(), "signal is one-shot");
    }

    #[test]
    fn double_fire_is_idempotent() {
        let w = Waker::new("t");
        w.begin_wait();
        assert!(w.fire());
        assert!(!w.fire(), "second fire must not double-decrement");
    }

    #[test]
    fn waker_is_reusable_after_consumption() {
        let w = Waker::new("t");
        w.fire();
        assert!(w.begin_wait());
        assert!(!w.begin_wait(), "fresh wait blocks again");
        assert!(w.fire());
        assert!(w.try_consume());
    }

    #[test]
    fn clones_share_state() {
        let w = Waker::new("t");
        let w2 = w.clone();
        w.fire();
        assert!(w2.is_signaled());
        assert_eq!(w2.name(), "t");
    }
}
