//! The discrete-event engine: virtual time, fluid flows with max-min fair
//! bandwidth sharing, and a blocked-thread quorum protocol that lets
//! simulated ranks be written as ordinary blocking Rust threads.
//!
//! # Execution model
//!
//! Simulated actors are OS threads registered via
//! [`Engine::register_thread`]. Every blocking operation funnels into
//! [`SimThread::wait`] on a [`Waker`]. Virtual time only advances when
//! *all* registered threads are blocked: the last thread to block becomes
//! the coordinator, pops the earliest event, advances `now`, and handles
//! it. Handling an event may fire wakers, making threads runnable again;
//! the clock then stays frozen until they all block once more. This gives
//! deterministic-enough virtual time while keeping rank code straight-line.
//!
//! # Flows
//!
//! A transfer is a *flow*: a byte count draining over a route of directed
//! links at the max-min fair rate (see [`crate::fairness`]). Rates are
//! recomputed whenever the set of active flows changes; in-flight
//! completion events are invalidated by a per-flow generation counter.
//!
//! # Callbacks
//!
//! Completion handlers ([`OnComplete::Call`]) run *inside* the engine
//! lock and receive a [`Ctx`] with non-blocking operations only. They
//! must never touch the public blocking API — doing so would deadlock.

use crate::fairness::{FairShareScratch, FlowDemand};
use crate::time::SimTime;
use crate::waker::Waker;
use mpx_obs::{Phase, Recorder};
use mpx_topo::units::Secs;
use mpx_topo::{LinkId, Topology};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Deterministic latency noise: every flow's startup latency is scaled
/// by a factor drawn from `[1 − spread, 1 + spread]` using a seeded RNG.
/// Models OS/driver timing variation; the same seed reproduces the same
/// run exactly. This is the "latency and bandwidth variations" the
/// paper's Observation 2 says larger window sizes smooth over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// RNG seed.
    pub seed: u64,
    /// Relative spread (e.g. 0.3 → ±30% on startup latencies).
    pub spread: f64,
}

/// Identifier of a flow within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A callback run by the event loop. Runs under the engine lock; use only
/// the [`Ctx`] argument, never the blocking `Engine`/`SimThread` API.
pub type EventFn = Box<dyn FnOnce(&mut Ctx<'_>) + Send>;

/// What to do when a flow or timer completes.
pub enum OnComplete {
    /// Do nothing.
    Nothing,
    /// Fire a waker (unblocking a simulated thread).
    Signal(Waker),
    /// Run a callback in the event loop.
    Call(EventFn),
}

impl std::fmt::Debug for OnComplete {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnComplete::Nothing => write!(f, "Nothing"),
            OnComplete::Signal(w) => write!(f, "Signal({})", w.name()),
            OnComplete::Call(_) => write!(f, "Call(..)"),
        }
    }
}

/// Description of a transfer to inject into the fabric.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Directed links the flow occupies, in traversal order. Repeated
    /// links count double for contention.
    pub route: Vec<LinkId>,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Extra startup delay charged before the flow becomes active, *in
    /// addition to* the sum of link latencies (used for software launch
    /// overheads).
    pub extra_latency: Secs,
    /// QoS weight for fair sharing: a weight-2 flow receives twice the
    /// rate of a weight-1 flow wherever they contend. Default 1.
    pub weight: f64,
    /// Multiplier applied to the flow's *total* startup latency (link
    /// latencies plus `extra_latency`) at issue time. Default 1. The
    /// partitioned scenario runner uses this to apply jitter factors it
    /// pre-drew in global issue order, so the same factors reach a flow
    /// no matter which partition simulates it (see [`crate::parallel`]).
    pub latency_factor: f64,
    /// Label recorded in the trace (e.g. `p1.c3.leg2`).
    pub label: String,
}

impl FlowSpec {
    /// A flow over `route` carrying `bytes`, no extra latency, no label.
    pub fn new(route: Vec<LinkId>, bytes: usize) -> FlowSpec {
        FlowSpec {
            route,
            bytes,
            extra_latency: 0.0,
            weight: 1.0,
            latency_factor: 1.0,
            label: String::new(),
        }
    }

    /// Sets the startup-latency multiplier (must be positive and finite).
    pub fn with_latency_factor(mut self, factor: f64) -> FlowSpec {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "invalid latency factor {factor}"
        );
        self.latency_factor = factor;
        self
    }

    /// Sets the QoS weight (must be positive).
    pub fn with_weight(mut self, weight: f64) -> FlowSpec {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "invalid weight {weight}"
        );
        self.weight = weight;
        self
    }

    /// Sets the trace label.
    pub fn labeled(mut self, label: impl Into<String>) -> FlowSpec {
        self.label = label.into();
        self
    }

    /// Adds software startup latency.
    pub fn with_extra_latency(mut self, l: Secs) -> FlowSpec {
        self.extra_latency += l;
        self
    }
}

/// One completed-flow record (tracing must be enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Flow id.
    pub flow: FlowId,
    /// Trace label from the [`FlowSpec`].
    pub label: String,
    /// Route taken.
    pub route: Vec<LinkId>,
    /// Bytes carried.
    pub bytes: usize,
    /// When the flow was issued.
    pub issued: SimTime,
    /// When data started moving (after latency).
    pub activated: SimTime,
    /// When the last byte arrived.
    pub completed: SimTime,
}

/// Per-link counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkStats {
    /// Total bytes that crossed the link.
    pub bytes: f64,
    /// Number of flows that used the link.
    pub flows: u64,
}

/// Snapshot of engine counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Virtual time of the snapshot.
    pub now: SimTime,
    /// Per-link counters, indexed like `Topology::links`.
    pub links: Vec<LinkStats>,
    /// Flows issued so far.
    pub flows_issued: u64,
    /// Flows completed so far.
    pub flows_completed: u64,
    /// Events processed so far.
    pub events_processed: u64,
    /// Events ever pushed onto the queue (processed, pending, or
    /// superseded). The gap to `events_processed` measures completion
    /// reschedule churn from rate changes.
    pub events_scheduled: u64,
    /// Fault events fired by an installed fault plan (see
    /// [`crate::fault`]).
    pub faults_fired: u64,
    /// Cumulative count of flows that entered the stalled state because a
    /// link on their route went down.
    pub flows_stalled: u64,
    /// Links currently down (capacity forced to zero).
    pub links_down: u64,
    /// Connected-component partitions the workload decomposed into.
    /// Always filled by the scenario runner (see [`crate::parallel`]) in
    /// *both* serial and parallel mode — the decomposition is a property
    /// of the workload, not of the execution strategy — so the two modes
    /// report identical values. Zero for raw [`Engine`] runs.
    pub partitions: u64,
    /// Partition merges forced by flows whose routes bridged two
    /// already-occupied partitions (rebalance events).
    pub rebalances: u64,
    /// Admitted events (flow issues or faults) whose owning partition at
    /// execution time differed from their partition at admission time —
    /// i.e. events re-routed across a component boundary by a later
    /// rebalance.
    pub cross_component_events: u64,
}

impl StatsSnapshot {
    /// Mirrors the engine counters into a telemetry registry under the
    /// `sim.` namespace — one of the three stats surfaces unified by the
    /// [`mpx_obs::MetricsSnapshot`] schema.
    pub fn fill_registry(&self, reg: &mpx_obs::TelemetryRegistry) {
        reg.set_gauge("sim.now_secs", self.now.as_secs());
        reg.set_counter("sim.flows_issued", self.flows_issued);
        reg.set_counter("sim.flows_completed", self.flows_completed);
        reg.set_counter("sim.events_processed", self.events_processed);
        reg.set_counter("sim.events_scheduled", self.events_scheduled);
        reg.set_counter("sim.faults_fired", self.faults_fired);
        reg.set_counter("sim.flows_stalled", self.flows_stalled);
        reg.set_counter("sim.links_down", self.links_down);
        reg.set_counter("sim.partitions", self.partitions);
        reg.set_counter("sim.rebalances", self.rebalances);
        reg.set_counter("sim.cross_component_events", self.cross_component_events);
        let total_bytes: f64 = self.links.iter().map(|l| l.bytes).sum();
        reg.set_gauge("sim.link_bytes_total", total_bytes);
    }
}

struct FlowState {
    route: Vec<LinkId>,
    demand: FlowDemand,
    remaining: f64,
    rate: f64,
    last_update: SimTime,
    generation: u64,
    active: bool,
    /// True while a down link on the route holds the flow at rate zero.
    stalled: bool,
    /// Visit stamp for connected-component discovery (`State::comp_epoch`).
    comp_mark: u64,
    done: OnComplete,
    bytes: usize,
    issued: SimTime,
    activated: SimTime,
    label: String,
}

enum Event {
    Timer(OnComplete),
    FlowActivate(FlowId),
    FlowComplete(FlowId, u64),
}

struct QueuedEvent {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct State {
    now: SimTime,
    seq: u64,
    /// Current link capacities (bytes/s); starts from the topology and
    /// may be degraded at runtime.
    capacities: Vec<f64>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    flows: HashMap<FlowId, FlowState>,
    next_flow: u64,
    registered: usize,
    blocked: usize,
    poisoned: bool,
    link_stats: Vec<LinkStats>,
    flows_issued: u64,
    flows_completed: u64,
    events_processed: u64,
    trace: Option<Vec<TraceRecord>>,
    jitter: Option<(JitterModel, StdRng)>,
    /// Active flows per link (by link index); maintained on activation
    /// and completion, and the adjacency for component discovery.
    link_flows: Vec<Vec<FlowId>>,
    /// Persistent allocator scratch: recomputation allocates nothing in
    /// steady state.
    fair: FairShareScratch,
    /// Component scratch: links found (doubles as the BFS worklist).
    comp_links: Vec<usize>,
    /// Component scratch: member flows, sorted for canonical float order.
    comp_flows: Vec<FlowId>,
    /// Link visit stamps for component discovery.
    link_mark: Vec<u64>,
    comp_epoch: u64,
    /// Output buffer for the allocator.
    rates_scratch: Vec<f64>,
    /// Component members that are *not* stalled — the allocator's actual
    /// input (stalled flows must never reach it: their down links carry a
    /// zero capacity the fair-share code rejects).
    comp_live: Vec<FlowId>,
    /// Per-link down flags (capacity forced to zero).
    down: Vec<bool>,
    /// Capacity stashed when a link went down, restored on recovery.
    saved_capacity: Vec<f64>,
    /// Per-link latency multipliers (latency-spike faults).
    latency_scale: Vec<f64>,
    /// Fast guard: true iff any link is down (keeps the no-fault hot
    /// path free of per-flow down-link scans).
    any_down: bool,
    faults_fired: u64,
    flows_stalled: u64,
    /// Telemetry sink; when present, every completed flow becomes a span
    /// on its lane track and on each link it crossed (see `mpx-obs`).
    recorder: Option<Recorder>,
    /// Pre-rendered `link:src->dst` track names, indexed by link id —
    /// cloning one is cheaper than re-formatting it per recorded span,
    /// which keeps the always-on flight recorder off the hot path's back.
    link_tracks: Vec<String>,
}

struct Shared {
    topo: Arc<Topology>,
    state: Mutex<State>,
    cv: Condvar,
}

/// The simulation engine. Clone freely; clones share the simulation.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
}

/// Non-blocking operations available to event callbacks.
pub struct Ctx<'a> {
    st: &'a mut State,
    topo: &'a Topology,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.st.now
    }

    /// The topology the engine simulates.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Schedules `done` to run after `delay` seconds of virtual time.
    pub fn schedule_in(&mut self, delay: Secs, done: OnComplete) {
        let at = self.st.now.after(delay);
        push_event(self.st, at, Event::Timer(done));
    }

    /// Schedules `done` at absolute virtual time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, done: OnComplete) {
        let at = at.max(self.st.now);
        push_event(self.st, at, Event::Timer(done));
    }

    /// Fires a waker immediately.
    pub fn signal(&mut self, w: &Waker) {
        fire_waker(self.st, w);
    }

    /// Injects a flow; `done` runs/fires when the last byte lands.
    pub fn start_flow(&mut self, spec: FlowSpec, done: OnComplete) -> FlowId {
        start_flow_locked(self.st, self.topo, spec, done)
    }

    /// Takes a link down: capacity drops to zero and every flow crossing
    /// it stalls until [`Ctx::restore_link`].
    pub fn set_link_down(&mut self, link: LinkId) {
        set_link_down_locked(self.st, link);
    }

    /// Brings a down link back at its stashed capacity; stalled flows
    /// that no longer cross any down link resume.
    pub fn restore_link(&mut self, link: LinkId) {
        restore_link_locked(self.st, link);
    }

    /// Multiplies a link's current capacity by `factor` (bandwidth
    /// degradation faults).
    pub fn scale_link_capacity(&mut self, link: LinkId, factor: f64) {
        scale_link_capacity_locked(self.st, link, factor);
    }

    /// Sets a link's latency multiplier, applied to flows issued from now
    /// on (latency-spike faults). `1.0` restores nominal latency.
    pub fn set_link_latency_scale(&mut self, link: LinkId, scale: f64) {
        set_latency_scale_locked(self.st, link, scale);
    }

    /// True unless the link is currently down.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        !self.st.down[link.index()]
    }

    /// Bumps the fault counter surfaced in [`StatsSnapshot::faults_fired`].
    pub fn note_fault(&mut self) {
        self.st.faults_fired += 1;
    }

    /// The telemetry recorder installed on the engine, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.st.recorder.as_ref()
    }

    /// Records a fault instant on the affected link's track (no-op
    /// without a recorder).
    pub fn record_fault_instant(&mut self, kind: &str, link: LinkId) {
        if let Some(rec) = self.st.recorder.as_ref() {
            let track = match self.topo.link(link) {
                Ok(l) => format!("link:{}->{}", l.src, l.dst),
                Err(_) => "fabric".to_string(),
            };
            rec.instant(
                Phase::Fault,
                track,
                format!("fault:{kind} {link}"),
                self.st.now.as_secs(),
                kind.to_string(),
            );
        }
    }
}

impl Engine {
    /// Creates an engine over `topo` with tracing disabled.
    pub fn new(topo: Arc<Topology>) -> Engine {
        Engine::with_tracing(topo, false)
    }

    /// Creates an engine, optionally recording a [`TraceRecord`] per flow.
    pub fn with_tracing(topo: Arc<Topology>, trace: bool) -> Engine {
        let nlinks = topo.link_count();
        let capacities: Vec<f64> = topo.links.iter().map(|l| l.bandwidth).collect();
        let link_tracks: Vec<String> = topo
            .links
            .iter()
            .map(|l| format!("link:{}->{}", l.src, l.dst))
            .collect();
        Engine {
            shared: Arc::new(Shared {
                topo,
                state: Mutex::new(State {
                    now: SimTime::ZERO,
                    seq: 0,
                    capacities,
                    queue: BinaryHeap::new(),
                    flows: HashMap::new(),
                    next_flow: 0,
                    registered: 0,
                    blocked: 0,
                    poisoned: false,
                    link_stats: vec![LinkStats::default(); nlinks],
                    flows_issued: 0,
                    flows_completed: 0,
                    events_processed: 0,
                    trace: trace.then(Vec::new),
                    jitter: None,
                    link_flows: vec![Vec::new(); nlinks],
                    fair: FairShareScratch::default(),
                    comp_links: Vec::new(),
                    comp_flows: Vec::new(),
                    link_mark: vec![0; nlinks],
                    comp_epoch: 0,
                    rates_scratch: Vec::new(),
                    comp_live: Vec::new(),
                    down: vec![false; nlinks],
                    saved_capacity: vec![0.0; nlinks],
                    latency_scale: vec![1.0; nlinks],
                    any_down: false,
                    faults_fired: 0,
                    flows_stalled: 0,
                    recorder: None,
                    link_tracks,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.shared.topo
    }

    /// Installs a telemetry recorder: from now on every completed flow is
    /// recorded as a span on its lane track *and* on each link of its
    /// route, and fault events mark instants (see `mpx-obs`). Install
    /// before building runtimes on top of the engine — they cache the
    /// recorder handle at construction.
    pub fn set_recorder(&self, recorder: Recorder) {
        self.shared.state.lock().recorder = Some(recorder);
    }

    /// The installed telemetry recorder, if any (cheap clone of a shared
    /// handle).
    pub fn recorder(&self) -> Option<Recorder> {
        self.shared.state.lock().recorder.clone()
    }

    /// Changes a link's capacity at the current virtual time (hardware
    /// degradation, cable fault, QoS throttling). In-flight flows are
    /// re-shared immediately; the topology description itself is
    /// untouched, so models consulting it will mis-predict until they
    /// recalibrate — which is the experiment this API exists for.
    ///
    /// # Panics
    /// Panics on non-positive capacities or unknown links.
    pub fn set_link_capacity(&self, link: mpx_topo::LinkId, bytes_per_sec: f64) {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "invalid capacity {bytes_per_sec}"
        );
        let mut st = self.shared.state.lock();
        assert!(link.index() < st.capacities.len(), "unknown link {link}");
        if st.down[link.index()] {
            // The link is down: remember the new capacity for when it
            // comes back, but keep it dead for now.
            st.saved_capacity[link.index()] = bytes_per_sec;
            return;
        }
        st.capacities[link.index()] = bytes_per_sec;
        // Only flows sharing a link (transitively) with the changed one
        // can see a different fair share.
        recompute_component(&mut st, [link.index()]);
        self.shared.cv.notify_all();
    }

    /// Takes a link down (capacity → 0). Flows crossing it stall at rate
    /// zero — they neither progress nor complete — until
    /// [`Engine::restore_link`]. Idempotent.
    pub fn set_link_down(&self, link: LinkId) {
        let mut st = self.shared.state.lock();
        set_link_down_locked(&mut st, link);
        self.shared.cv.notify_all();
    }

    /// Brings a down link back at the capacity it had when it failed.
    /// Stalled flows whose routes are fully up resume and re-share.
    /// Idempotent (no-op on an up link).
    pub fn restore_link(&self, link: LinkId) {
        let mut st = self.shared.state.lock();
        restore_link_locked(&mut st, link);
        self.shared.cv.notify_all();
    }

    /// True unless the link is currently down.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        !self.shared.state.lock().down[link.index()]
    }

    /// True iff *any* link is currently down — the same fast guard the
    /// flow recomputation uses, exposed so transports can skip per-path
    /// link scans entirely on a healthy fabric.
    pub fn any_link_down(&self) -> bool {
        self.shared.state.lock().any_down
    }

    /// Sets a link's latency multiplier (applied to flows issued from now
    /// on). `1.0` restores nominal latency.
    pub fn set_link_latency_scale(&self, link: LinkId, scale: f64) {
        let mut st = self.shared.state.lock();
        set_latency_scale_locked(&mut st, link, scale);
    }

    /// The current (possibly degraded) capacity of a link.
    pub fn link_capacity(&self, link: mpx_topo::LinkId) -> f64 {
        self.shared.state.lock().capacities[link.index()]
    }

    /// Runs `f` against every link's current capacity, without copying.
    /// Keep `f` short: it runs under the engine lock.
    pub fn with_capacities<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        f(&self.shared.state.lock().capacities)
    }

    /// Copies every link's current capacity into `buf` (cleared first) —
    /// the reusable-buffer alternative to allocating a fresh snapshot
    /// per call in probe sweeps.
    pub fn copy_capacities_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend_from_slice(&self.shared.state.lock().capacities);
    }

    /// Enables deterministic latency jitter for flows issued from now on.
    pub fn set_jitter(&self, model: JitterModel) {
        assert!(
            (0.0..1.0).contains(&model.spread),
            "spread must be in [0, 1)"
        );
        let mut st = self.shared.state.lock();
        st.jitter = Some((model, StdRng::seed_from_u64(model.seed)));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Registers a simulated actor. Keep the guard alive for as long as
    /// the actor participates.
    ///
    /// **All actors of a phase must be registered before any of them
    /// starts blocking** — otherwise an early actor can form a quorum by
    /// itself and run virtual time ahead of latecomers. The standard
    /// pattern is to register every actor in the parent thread and move
    /// each [`SimThread`] guard into its worker:
    ///
    /// ```
    /// # use std::sync::Arc;
    /// # use mpx_sim::Engine;
    /// # use mpx_topo::presets;
    /// let eng = Engine::new(Arc::new(presets::beluga()));
    /// let actors: Vec<_> = (0..2).map(|i| eng.register_thread(format!("rank{i}"))).collect();
    /// let handles: Vec<_> = actors
    ///     .into_iter()
    ///     .map(|t| std::thread::spawn(move || t.sleep(1e-6)))
    ///     .collect();
    /// for h in handles { h.join().unwrap(); }
    /// ```
    pub fn register_thread(&self, name: impl Into<String>) -> SimThread {
        let mut st = self.shared.state.lock();
        st.registered += 1;
        SimThread {
            engine: self.clone(),
            name: name.into(),
        }
    }

    /// Schedules `done` after `delay` seconds (non-blocking; callable from
    /// any thread).
    pub fn schedule_in(&self, delay: Secs, done: OnComplete) {
        let mut st = self.shared.state.lock();
        let at = st.now.after(delay);
        push_event(&mut st, at, Event::Timer(done));
        self.shared.cv.notify_all();
    }

    /// Schedules `done` at absolute virtual time `at` (clamped to now;
    /// non-blocking; callable from any thread).
    pub fn schedule_at(&self, at: SimTime, done: OnComplete) {
        let mut st = self.shared.state.lock();
        let at = at.max(st.now);
        push_event(&mut st, at, Event::Timer(done));
        self.shared.cv.notify_all();
    }

    /// Fires a waker immediately (non-blocking; callable from any
    /// thread).
    pub fn signal_waker(&self, w: &Waker) {
        let mut st = self.shared.state.lock();
        fire_waker(&mut st, w);
        self.shared.cv.notify_all();
    }

    /// Injects a flow (non-blocking). `done` fires when it completes.
    pub fn start_flow(&self, spec: FlowSpec, done: OnComplete) -> FlowId {
        let mut st = self.shared.state.lock();
        let id = start_flow_locked(&mut st, &self.shared.topo, spec, done);
        self.shared.cv.notify_all();
        id
    }

    /// Drains the event queue without any registered threads — the
    /// deterministic single-threaded driver used by unit tests and
    /// callback-structured workloads.
    ///
    /// # Panics
    /// Panics if simulated threads are registered (they own the clock).
    pub fn run_until_idle(&self) {
        let mut st = self.shared.state.lock();
        assert_eq!(
            st.registered, 0,
            "run_until_idle with registered threads would corrupt the quorum"
        );
        while process_next_event(&mut st, &self.shared.topo) {}
    }

    /// Drains events until virtual time would pass `deadline` (events at
    /// or before the deadline are processed; later ones stay queued).
    /// Like [`Engine::run_until_idle`], only valid without registered
    /// threads. Returns the number of events processed.
    pub fn run_until(&self, deadline: SimTime) -> u64 {
        let mut st = self.shared.state.lock();
        assert_eq!(
            st.registered, 0,
            "run_until with registered threads would corrupt the quorum"
        );
        let before = st.events_processed;
        loop {
            let next = st.queue.peek().map(|Reverse(qe)| qe.at);
            match next {
                Some(at) if at <= deadline => {
                    if !process_next_event(&mut st, &self.shared.topo) {
                        break;
                    }
                }
                _ => break,
            }
        }
        if st.now < deadline {
            st.now = deadline;
        }
        st.events_processed - before
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let st = self.shared.state.lock();
        StatsSnapshot {
            now: st.now,
            links: st.link_stats.clone(),
            flows_issued: st.flows_issued,
            flows_completed: st.flows_completed,
            events_processed: st.events_processed,
            events_scheduled: st.seq,
            faults_fired: st.faults_fired,
            flows_stalled: st.flows_stalled,
            links_down: st.down.iter().filter(|&&d| d).count() as u64,
            partitions: 0,
            rebalances: 0,
            cross_component_events: 0,
        }
    }

    /// Takes the accumulated trace. Returns an empty `Vec` when tracing
    /// was never enabled (see [`Engine::with_tracing`]) — callers need
    /// no enablement check before draining.
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        let mut st = self.shared.state.lock();
        match st.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Number of flows currently in flight.
    pub fn active_flows(&self) -> usize {
        self.shared.state.lock().flows.len()
    }

    fn block_on(&self, waker: &Waker, who: &str) {
        let sh = &self.shared;
        let mut st = sh.state.lock();
        if st.poisoned {
            panic!("simulation engine poisoned (earlier deadlock)");
        }
        if waker.begin_wait() {
            return; // already signaled
        }
        st.blocked += 1;
        loop {
            if waker.try_consume() {
                return; // `blocked` was decremented by the firing site
            }
            if st.poisoned {
                panic!("simulation engine poisoned (earlier deadlock)");
            }
            if st.blocked == st.registered {
                if !process_next_event(&mut st, &sh.topo) {
                    st.poisoned = true;
                    sh.cv.notify_all();
                    panic!(
                        "simulated deadlock at {}: {} blocked thread(s), empty event queue; \
                         thread `{who}` waiting on `{}`",
                        st.now,
                        st.blocked,
                        waker.name()
                    );
                }
                sh.cv.notify_all();
                continue;
            }
            sh.cv.wait(&mut st);
        }
    }
}

/// A registered simulated thread. Dropping deregisters it.
pub struct SimThread {
    engine: Engine,
    name: String,
}

impl SimThread {
    /// The engine this thread participates in.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Thread name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Blocks until `waker` fires.
    pub fn wait(&self, waker: &Waker) {
        self.engine.block_on(waker, &self.name);
    }

    /// Blocks until `waker` fires or virtual time reaches `deadline`.
    /// Returns `true` if the waker fired, `false` on timeout.
    ///
    /// The timeout is an ordinary engine event, so a wait with a deadline
    /// can never trip the deadlock detector: there is always at least one
    /// event queued while the thread blocks.
    pub fn wait_until(&self, waker: &Waker, deadline: SimTime) -> bool {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cancelled = Arc::new(AtomicBool::new(false));
        let timed_out = Arc::new(AtomicBool::new(false));
        let w = waker.clone();
        let c = cancelled.clone();
        let t = timed_out.clone();
        self.engine.schedule_at(
            deadline,
            OnComplete::Call(Box::new(move |ctx| {
                // The waiter may have been woken (and the wait cancelled)
                // before this event fires; in that case it is a dud.
                if !c.load(Ordering::Acquire) {
                    t.store(true, Ordering::Release);
                    ctx.signal(&w);
                }
            })),
        );
        self.wait(waker);
        if timed_out.load(Ordering::Acquire) {
            false
        } else {
            // Won the race: defuse the still-queued timeout event so it
            // cannot misfire the (reusable) waker later.
            cancelled.store(true, Ordering::Release);
            true
        }
    }

    /// Sleeps for `d` seconds of virtual time.
    pub fn sleep(&self, d: Secs) {
        let w = Waker::new(format!("{}.sleep", self.name));
        self.engine.schedule_in(d, OnComplete::Signal(w.clone()));
        self.wait(&w);
    }

    /// Starts a flow and blocks until it completes.
    pub fn transfer(&self, spec: FlowSpec) {
        let w = Waker::new(format!("{}.transfer", self.name));
        self.engine.start_flow(spec, OnComplete::Signal(w.clone()));
        self.wait(&w);
    }
}

impl Drop for SimThread {
    fn drop(&mut self) {
        let mut st = self.engine.shared.state.lock();
        st.registered -= 1;
        // Quorum may now be complete for the remaining threads.
        self.engine.shared.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Lock-held internals. Every function below expects the engine mutex.
// ---------------------------------------------------------------------

/// Collapses a flow label to its Perfetto lane: the chunk field is
/// dropped (`xfer0.p1.c3.leg2` → `xfer0.p1.leg2`) so a chunked path
/// renders one row per leg, mirroring `stats::trace_to_chrome_json`.
fn lane_of(label: &str) -> String {
    // Chunk-free labels (plain flows, probes) are their own lane.
    if !label.contains('.') {
        return label.to_string();
    }
    let mut parts: Vec<&str> = label.split('.').collect();
    parts.retain(|p| {
        !(p.starts_with('c') && p.len() > 1 && p[1..].bytes().all(|b| b.is_ascii_digit()))
    });
    parts.join(".")
}

fn push_event(st: &mut State, at: SimTime, ev: Event) {
    let seq = st.seq;
    st.seq += 1;
    st.queue.push(Reverse(QueuedEvent { at, seq, ev }));
}

fn fire_waker(st: &mut State, w: &Waker) {
    if w.fire() {
        debug_assert!(st.blocked > 0);
        st.blocked -= 1;
    }
}

fn set_link_down_locked(st: &mut State, link: LinkId) {
    let l = link.index();
    assert!(l < st.capacities.len(), "unknown link {link}");
    if st.down[l] {
        return;
    }
    st.saved_capacity[l] = st.capacities[l];
    st.capacities[l] = 0.0;
    st.down[l] = true;
    st.any_down = true;
    recompute_component(st, [l]);
}

fn restore_link_locked(st: &mut State, link: LinkId) {
    let l = link.index();
    assert!(l < st.capacities.len(), "unknown link {link}");
    if !st.down[l] {
        return;
    }
    st.capacities[l] = st.saved_capacity[l];
    st.down[l] = false;
    st.any_down = st.down.iter().any(|&d| d);
    // Stalled flows are still registered on the link; the recomputation
    // rediscovers them and hands them a fresh fair share.
    recompute_component(st, [l]);
}

fn scale_link_capacity_locked(st: &mut State, link: LinkId, factor: f64) {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "invalid degradation factor {factor}"
    );
    let l = link.index();
    assert!(l < st.capacities.len(), "unknown link {link}");
    if st.down[l] {
        st.saved_capacity[l] *= factor;
        return;
    }
    st.capacities[l] *= factor;
    recompute_component(st, [l]);
}

fn set_latency_scale_locked(st: &mut State, link: LinkId, scale: f64) {
    assert!(
        scale > 0.0 && scale.is_finite(),
        "invalid latency scale {scale}"
    );
    let l = link.index();
    assert!(l < st.latency_scale.len(), "unknown link {link}");
    st.latency_scale[l] = scale;
}

fn run_on_complete(st: &mut State, topo: &Topology, done: OnComplete) {
    match done {
        OnComplete::Nothing => {}
        OnComplete::Signal(w) => fire_waker(st, &w),
        OnComplete::Call(f) => {
            let mut ctx = Ctx { st, topo };
            f(&mut ctx);
        }
    }
}

fn start_flow_locked(st: &mut State, topo: &Topology, spec: FlowSpec, done: OnComplete) -> FlowId {
    assert!(
        !spec.route.is_empty(),
        "flow `{}` has an empty route",
        spec.label
    );
    let mut latency = spec.extra_latency;
    for &lid in &spec.route {
        latency += topo
            .link(lid)
            .unwrap_or_else(|e| panic!("flow `{}`: {e}", spec.label))
            .latency
            * st.latency_scale[lid.index()];
    }
    latency *= spec.latency_factor;
    if let Some((model, rng)) = st.jitter.as_mut() {
        let factor = 1.0 + rng.gen_range(-model.spread..=model.spread);
        latency *= factor;
    }
    let id = FlowId(st.next_flow);
    st.next_flow += 1;
    st.flows_issued += 1;
    let demand = FlowDemand::from_route_weighted(
        &spec.route.iter().map(|l| l.index()).collect::<Vec<_>>(),
        spec.weight,
    );
    for &(l, _) in &demand.links {
        st.link_stats[l].flows += 1;
    }
    let now = st.now;
    st.flows.insert(
        id,
        FlowState {
            route: spec.route,
            demand,
            remaining: spec.bytes as f64,
            rate: 0.0,
            last_update: now,
            generation: 0,
            active: false,
            stalled: false,
            comp_mark: 0,
            done,
            bytes: spec.bytes,
            issued: now,
            activated: SimTime::NEVER,
            label: spec.label,
        },
    );
    let at = now.after(latency);
    push_event(st, at, Event::FlowActivate(id));
    id
}

/// Recomputes fair-share rates for the connected component of active
/// flows reachable — via shared links — from the `seeds` link indices.
///
/// Flows on links disjoint from the component are untouched: their rates
/// and queued completion events stay valid, and their byte accounting
/// keeps accruing linearly at the unchanged rate. Within the component,
/// progress is drained to `st.now` first, then rates are recomputed with
/// the persistent [`FairShareScratch`] (no allocation in steady state).
/// Only flows whose rate *actually changed* get a generation bump and a
/// fresh completion event; a flow whose fair share came out identical
/// keeps its already-queued event, so steady traffic does not churn the
/// queue.
fn recompute_component(st: &mut State, seeds: impl IntoIterator<Item = usize>) {
    st.comp_epoch += 1;
    let epoch = st.comp_epoch;
    st.comp_links.clear();
    st.comp_flows.clear();
    for l in seeds {
        if st.link_mark[l] != epoch {
            st.link_mark[l] = epoch;
            st.comp_links.push(l);
        }
    }
    // Breadth-first walk of the flow–link bipartite graph; `comp_links`
    // doubles as the worklist.
    let mut cursor = 0;
    while cursor < st.comp_links.len() {
        let l = st.comp_links[cursor];
        cursor += 1;
        for i in 0..st.link_flows[l].len() {
            let id = st.link_flows[l][i];
            let fs = st.flows.get_mut(&id).expect("link lists a missing flow");
            if fs.comp_mark == epoch {
                continue;
            }
            fs.comp_mark = epoch;
            st.comp_flows.push(id);
            for &(l2, _) in &fs.demand.links {
                if st.link_mark[l2] != epoch {
                    st.link_mark[l2] = epoch;
                    st.comp_links.push(l2);
                }
            }
        }
    }
    if st.comp_flows.is_empty() {
        return;
    }
    // Canonical flow order, so float accumulation is reproducible no
    // matter how the component was discovered.
    st.comp_flows.sort_unstable();

    let now = st.now;
    // 1. Drain elapsed progress for component members.
    for i in 0..st.comp_flows.len() {
        let id = st.comp_flows[i];
        let fs = st.flows.get_mut(&id).expect("flow disappeared");
        let dt = now.secs_since(fs.last_update);
        if dt > 0.0 && fs.rate > 0.0 {
            let drained = (fs.rate * dt).min(fs.remaining);
            fs.remaining -= drained;
            for &(l, m) in &fs.demand.links {
                st.link_stats[l].bytes += drained * m;
            }
        }
        fs.last_update = now;
    }
    // 2. Partition out stalled flows. A flow crossing any down link is
    // parked at rate zero (its queued completion event is invalidated by
    // the generation bump) and excluded from the allocator, which must
    // only ever see live links with positive capacity. With no link down
    // this is a straight memcpy of the component.
    {
        let State {
            flows,
            comp_flows,
            comp_live,
            down,
            flows_stalled,
            any_down,
            ..
        } = st;
        comp_live.clear();
        if *any_down {
            for &id in comp_flows.iter() {
                let fs = flows.get_mut(&id).expect("flow disappeared");
                if fs.demand.links.iter().any(|&(l, _)| down[l]) {
                    if !fs.stalled {
                        fs.stalled = true;
                        *flows_stalled += 1;
                    }
                    if fs.rate != 0.0 {
                        fs.rate = 0.0;
                        fs.generation += 1;
                    }
                } else {
                    fs.stalled = false;
                    comp_live.push(id);
                }
            }
        } else {
            comp_live.extend_from_slice(comp_flows);
        }
    }
    // 3. Fair-share rates for the live members, straight out of the
    // persistent scratch — no capacity clone, no demand clones.
    {
        let State {
            flows,
            fair,
            comp_live,
            capacities,
            rates_scratch,
            ..
        } = st;
        fair.compute_with(
            capacities,
            comp_live.len(),
            |i| &flows[&comp_live[i]].demand,
            rates_scratch,
        );
    }
    // 4. Apply; reschedule only where the rate moved.
    for i in 0..st.comp_live.len() {
        let id = st.comp_live[i];
        let rate = st.rates_scratch[i];
        let fs = st.flows.get_mut(&id).expect("flow disappeared");
        if rate == fs.rate {
            continue; // queued completion event is still exact
        }
        fs.rate = rate;
        fs.generation += 1;
        let gen = fs.generation;
        let eta = if fs.remaining <= 0.0 {
            0.0
        } else {
            fs.remaining / rate
        };
        push_event(st, now.after(eta), Event::FlowComplete(id, gen));
    }
}

fn complete_flow(st: &mut State, topo: &Topology, id: FlowId) {
    let mut fs = st.flows.remove(&id).expect("completing unknown flow");
    // Leave the fabric. Zero-byte flows complete without ever having
    // registered on their links, so absence is tolerated.
    for &(l, _) in &fs.demand.links {
        if let Some(pos) = st.link_flows[l].iter().position(|&f| f == id) {
            st.link_flows[l].swap_remove(pos);
        }
    }
    // Account the final drain exactly: whatever was left is delivered now.
    for &(l, m) in &fs.demand.links {
        st.link_stats[l].bytes += fs.remaining * m;
    }
    fs.remaining = 0.0;
    st.flows_completed += 1;
    if let Some(rec) = st.recorder.as_ref() {
        let label = if fs.label.is_empty() {
            format!("flow{}", id.0)
        } else {
            fs.label.clone()
        };
        // Probe flows carry a `probe` label prefix; everything else on
        // the fabric is a chunk leg (or direct-path flow) of a transfer.
        let phase = if label.starts_with("probe") {
            Phase::Probe
        } else {
            Phase::ChunkLeg
        };
        let start = if fs.activated == SimTime::NEVER {
            fs.issued
        } else {
            fs.activated
        };
        let (start, end) = (start.as_secs(), st.now.as_secs());
        let detail = format!("{} bytes", fs.bytes);
        rec.span(phase, lane_of(&label), label.clone(), start, end, &detail);
        for &(l, _) in &fs.demand.links {
            rec.span(
                phase,
                st.link_tracks[l].clone(),
                label.clone(),
                start,
                end,
                &detail,
            );
        }
    }
    if let Some(trace) = st.trace.as_mut() {
        trace.push(TraceRecord {
            flow: id,
            label: std::mem::take(&mut fs.label),
            route: fs.route.clone(),
            bytes: fs.bytes,
            issued: fs.issued,
            activated: fs.activated,
            completed: st.now,
        });
    }
    let done = std::mem::replace(&mut fs.done, OnComplete::Nothing);
    run_on_complete(st, topo, done);
    // The departed flow's links may now span several components; seed
    // with all of them so each gets re-shared.
    recompute_component(st, fs.demand.links.iter().map(|&(l, _)| l));
}

/// Pops and handles the earliest event. Returns `false` on an empty queue.
fn process_next_event(st: &mut State, topo: &Topology) -> bool {
    let Some(Reverse(qe)) = st.queue.pop() else {
        return false;
    };
    // Stale completion events (superseded by a rate change) are dropped
    // *without advancing the clock*: they are pure bookkeeping debris and
    // must not stretch the simulation's end time.
    if let Event::FlowComplete(id, gen) = qe.ev {
        let stale = st
            .flows
            .get(&id)
            .is_none_or(|f| f.generation != gen || !f.active);
        if stale {
            return true;
        }
    }
    debug_assert!(qe.at >= st.now, "event in the past: {} < {}", qe.at, st.now);
    st.now = qe.at.max(st.now);
    st.events_processed += 1;
    match qe.ev {
        Event::Timer(done) => run_on_complete(st, topo, done),
        Event::FlowActivate(id) => {
            let Some(fs) = st.flows.get_mut(&id) else {
                return true; // flow already gone (zero-byte fast path)
            };
            fs.active = true;
            fs.activated = st.now;
            fs.last_update = st.now;
            if fs.remaining <= 0.0 {
                complete_flow(st, topo, id);
            } else {
                // Join the fabric. One seed link suffices: component
                // discovery reaches the rest of the route through the
                // flow itself.
                let seed = fs.demand.links[0].0;
                for li in 0..fs.demand.links.len() {
                    let l = fs.demand.links[li].0;
                    st.link_flows[l].push(id);
                }
                recompute_component(st, [seed]);
            }
        }
        Event::FlowComplete(id, _gen) => complete_flow(st, topo, id),
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use mpx_topo::units::gb_per_s;

    fn engine() -> Engine {
        Engine::new(Arc::new(presets::synthetic_default()))
    }

    fn direct_route(eng: &Engine) -> Vec<LinkId> {
        let t = eng.topology();
        let gpus = t.gpus();
        vec![t.link_between(gpus[0], gpus[1]).unwrap().id]
    }

    #[test]
    fn single_flow_runs_at_link_rate() {
        let eng = engine();
        let route = direct_route(&eng);
        // 50 GB over a 50 GB/s link with 2 µs latency.
        eng.start_flow(FlowSpec::new(route, 50_000_000_000), OnComplete::Nothing);
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - 1.000002).abs() < 1e-8, "t = {t}");
    }

    #[test]
    fn two_flows_on_one_link_halve_rate() {
        let eng = engine();
        let route = direct_route(&eng);
        for _ in 0..2 {
            eng.start_flow(
                FlowSpec::new(route.clone(), 25_000_000_000),
                OnComplete::Nothing,
            );
        }
        eng.run_until_idle();
        // 2 × 25 GB on 50 GB/s shared fairly: both finish at ~1 s.
        let t = eng.now().as_secs();
        assert!((t - 1.000002).abs() < 1e-7, "t = {t}");
    }

    #[test]
    fn staggered_flow_speeds_up_after_first_completes() {
        let eng = engine();
        let route = direct_route(&eng);
        // Flow A: 25 GB. Flow B: 50 GB. Shared until A finishes at t≈1s
        // (25 GB at 25 GB/s each), then B runs at full 50 GB/s for its
        // remaining 25 GB → ~1.5 s total.
        eng.start_flow(
            FlowSpec::new(route.clone(), 25_000_000_000),
            OnComplete::Nothing,
        );
        eng.start_flow(FlowSpec::new(route, 50_000_000_000), OnComplete::Nothing);
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - 1.500002).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn zero_byte_flow_completes_after_latency_only() {
        let eng = engine();
        let route = direct_route(&eng);
        let w = Waker::new("done");
        eng.start_flow(FlowSpec::new(route, 0), OnComplete::Signal(w.clone()));
        eng.run_until_idle();
        assert!(w.is_signaled());
        assert!((eng.now().as_secs() - 2e-6).abs() < 1e-9);
    }

    #[test]
    fn extra_latency_delays_activation() {
        let eng = engine();
        let route = direct_route(&eng);
        eng.start_flow(
            FlowSpec::new(route, 0).with_extra_latency(10e-6),
            OnComplete::Nothing,
        );
        eng.run_until_idle();
        assert!((eng.now().as_secs() - 12e-6).abs() < 1e-9);
    }

    #[test]
    fn timer_callback_chains() {
        let eng = engine();
        let w = Waker::new("chain");
        let wc = w.clone();
        eng.schedule_in(
            1e-3,
            OnComplete::Call(Box::new(move |ctx| {
                ctx.schedule_in(1e-3, OnComplete::Signal(wc));
            })),
        );
        eng.run_until_idle();
        assert!(w.is_signaled());
        assert!((eng.now().as_secs() - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn flow_completion_callback_can_start_next_flow() {
        // Two sequential 25 GB transfers via callback chaining: 2 s total
        // (plus two latencies).
        let eng = engine();
        let route = direct_route(&eng);
        let r2 = route.clone();
        eng.start_flow(
            FlowSpec::new(route, 25_000_000_000),
            OnComplete::Call(Box::new(move |ctx| {
                ctx.start_flow(FlowSpec::new(r2, 25_000_000_000), OnComplete::Nothing);
            })),
        );
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - (1.0 + 2.0 * 2e-6)).abs() < 1e-7, "t = {t}");
    }

    #[test]
    fn stats_count_bytes_and_flows() {
        let eng = engine();
        let route = direct_route(&eng);
        eng.start_flow(FlowSpec::new(route.clone(), 1_000_000), OnComplete::Nothing);
        eng.run_until_idle();
        let stats = eng.stats();
        assert_eq!(stats.flows_issued, 1);
        assert_eq!(stats.flows_completed, 1);
        let l = route[0].index();
        assert!((stats.links[l].bytes - 1_000_000.0).abs() < 1.0);
        assert_eq!(stats.links[l].flows, 1);
    }

    #[test]
    fn trace_records_flow_lifecycle() {
        let eng = Engine::with_tracing(Arc::new(presets::synthetic_default()), true);
        let route = direct_route(&eng);
        eng.start_flow(
            FlowSpec::new(route, 1_000_000).labeled("probe"),
            OnComplete::Nothing,
        );
        eng.run_until_idle();
        let trace = eng.take_trace();
        assert_eq!(trace.len(), 1);
        let r = &trace[0];
        assert_eq!(r.label, "probe");
        assert_eq!(r.bytes, 1_000_000);
        assert!(r.issued <= r.activated && r.activated <= r.completed);
    }

    #[test]
    fn take_trace_without_tracing_returns_empty() {
        // Regression: draining a never-enabled trace must not panic and
        // must yield an empty Vec, even after flows completed.
        let eng = engine();
        let route = direct_route(&eng);
        eng.start_flow(FlowSpec::new(route, 1 << 20), OnComplete::Nothing);
        eng.run_until_idle();
        assert!(eng.take_trace().is_empty());
    }

    #[test]
    fn recorder_captures_flow_spans_on_lane_and_link_tracks() {
        let eng = engine();
        let rec = mpx_obs::Recorder::new();
        eng.set_recorder(rec.clone());
        assert!(eng.recorder().is_some());
        let route = direct_route(&eng);
        eng.start_flow(
            FlowSpec::new(route.clone(), 1 << 20).labeled("xfer0.p0.c1.leg1"),
            OnComplete::Nothing,
        );
        eng.start_flow(
            FlowSpec::new(route, 1 << 10).labeled("probe0"),
            OnComplete::Nothing,
        );
        eng.run_until_idle();
        let events = rec.drain();
        // Each flow spans its lane track and its one link track.
        assert_eq!(events.len(), 4, "{events:?}");
        let tracks: Vec<&str> = events.iter().map(|e| e.track()).collect();
        assert!(tracks.contains(&"xfer0.p0.leg1"), "{tracks:?}");
        assert!(tracks.iter().any(|t| t.starts_with("link:dev")));
        assert!(events.iter().any(|e| e.phase() == Phase::Probe));
        assert!(events.iter().any(|e| e.phase() == Phase::ChunkLeg));
    }

    #[test]
    fn threaded_sleep_advances_clock() {
        let eng = engine();
        let e2 = eng.clone();
        let h = std::thread::spawn(move || {
            let t = e2.register_thread("sleeper");
            t.sleep(5e-3);
            t.now().as_secs()
        });
        let woke_at = h.join().unwrap();
        assert!((woke_at - 5e-3).abs() < 1e-9);
    }

    #[test]
    fn two_threads_interleave_in_virtual_time() {
        let eng = engine();
        let order = Arc::new(Mutex::new(Vec::new()));
        // Register *all* actors before spawning any of them (see
        // `register_thread` docs — early actors must not form a quorum
        // alone).
        let actors: Vec<_> = [("a", 2e-3), ("b", 1e-3)]
            .into_iter()
            .map(|(name, delay)| (eng.register_thread(name), name, delay))
            .collect();
        let mut handles = Vec::new();
        for (t, name, delay) in actors {
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                t.sleep(delay);
                order.lock().push((name, t.now().as_nanos()));
                // Second phase: a sleeps 1 ms more, b 3 ms more.
                let second = if name == "a" { 1e-3 } else { 3e-3 };
                t.sleep(second);
                order.lock().push((name, t.now().as_nanos()));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock();
        let times: Vec<_> = order.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(
            times, sorted,
            "wakeups must be in virtual-time order: {order:?}"
        );
        assert_eq!(order[0].0, "b"); // b wakes first (1 ms)
        assert_eq!(order.last().unwrap().0, "b"); // b finishes last (4 ms)
    }

    #[test]
    fn threaded_transfer_blocks_until_completion() {
        let eng = engine();
        let route = direct_route(&eng);
        let e2 = eng.clone();
        let h = std::thread::spawn(move || {
            let t = e2.register_thread("mover");
            t.transfer(FlowSpec::new(route, 50_000_000_000));
            t.now().as_secs()
        });
        let t = h.join().unwrap();
        assert!((t - 1.000002).abs() < 1e-8);
    }

    #[test]
    fn concurrent_thread_transfers_share_bandwidth() {
        let eng = engine();
        let topo = eng.topology().clone();
        let gpus = topo.gpus();
        let route = vec![topo.link_between(gpus[0], gpus[1]).unwrap().id];
        let actors: Vec<_> = (0..2)
            .map(|i| eng.register_thread(format!("rank{i}")))
            .collect();
        let mut handles = Vec::new();
        for t in actors {
            let route = route.clone();
            handles.push(std::thread::spawn(move || {
                t.transfer(FlowSpec::new(route, 25_000_000_000));
                t.now().as_secs()
            }));
        }
        for h in handles {
            let t = h.join().unwrap();
            assert!((t - 1.000002).abs() < 1e-6, "t = {t}");
        }
    }

    #[test]
    #[should_panic(expected = "simulated deadlock")]
    fn deadlock_is_detected() {
        let eng = engine();
        let t = eng.register_thread("stuck");
        let w = Waker::new("never-fired");
        t.wait(&w);
    }

    #[test]
    #[should_panic(expected = "registered threads")]
    fn run_until_idle_rejects_registered_threads() {
        let eng = engine();
        let _t = eng.register_thread("active");
        eng.run_until_idle();
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_route_rejected() {
        let eng = engine();
        eng.start_flow(FlowSpec::new(vec![], 100), OnComplete::Nothing);
    }

    #[test]
    fn host_staged_flows_contend_on_dram() {
        // Two flows down and up through the host DRAM self-loop; the DRAM
        // link sees both, PCIe links one each.
        let topo = Arc::new(presets::beluga());
        let eng = Engine::new(topo.clone());
        let gpus = topo.gpus();
        let hm = topo.host_memories()[0];
        let down = vec![
            topo.link_between(gpus[0], hm).unwrap().id,
            topo.link_between(hm, hm).unwrap().id,
        ];
        let up = vec![
            topo.link_between(hm, hm).unwrap().id,
            topo.link_between(hm, gpus[1]).unwrap().id,
        ];
        let n = 12_000_000_000usize; // 12 GB ≈ 1 s at PCIe rate
        eng.start_flow(FlowSpec::new(down, n), OnComplete::Nothing);
        eng.start_flow(FlowSpec::new(up, n), OnComplete::Nothing);
        eng.run_until_idle();
        // DRAM (38 GB/s) is not the bottleneck for two 12 GB/s PCIe flows,
        // so both finish in ~1 s.
        let t = eng.now().as_secs();
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn rate_changes_invalidate_stale_completions() {
        // Start a long flow, then add a competitor halfway; the long
        // flow's original completion estimate must be discarded.
        let eng = engine();
        let route = direct_route(&eng);
        eng.start_flow(
            FlowSpec::new(route.clone(), 50_000_000_000),
            OnComplete::Nothing,
        );
        let r2 = route.clone();
        eng.schedule_in(
            0.5,
            OnComplete::Call(Box::new(move |ctx| {
                ctx.start_flow(FlowSpec::new(r2, 10_000_000_000), OnComplete::Nothing);
            })),
        );
        eng.run_until_idle();
        // First 0.5 s: flow A moves 25 GB. Then both share 25/25 GB/s;
        // B (10 GB) finishes at t=0.9, A has 15 GB left, done at 1.2 s.
        let t = eng.now().as_secs();
        assert!((t - 1.200002).abs() < 1e-5, "t = {t}");
    }

    #[test]
    fn events_at_same_time_fire_in_fifo_order() {
        let eng = engine();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            eng.schedule_in(
                1e-3,
                OnComplete::Call(Box::new(move |_| log.lock().push(i))),
            );
        }
        eng.run_until_idle();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn beluga_multi_path_aggregate_rate() {
        // Sanity for the headline speedup shape: four flows on disjoint
        // forward routes (direct, two staged first-legs, PCIe) must not
        // slow each other down.
        let topo = Arc::new(presets::beluga());
        let eng = Engine::new(topo.clone());
        let g = topo.gpus();
        let hm = topo.host_memories()[0];
        let routes = [
            vec![topo.link_between(g[0], g[1]).unwrap().id],
            vec![topo.link_between(g[0], g[2]).unwrap().id],
            vec![topo.link_between(g[0], g[3]).unwrap().id],
            vec![
                topo.link_between(g[0], hm).unwrap().id,
                topo.link_between(hm, hm).unwrap().id,
            ],
        ];
        let sizes = [
            gb_per_s(48.0) as usize,
            gb_per_s(48.0) as usize,
            gb_per_s(48.0) as usize,
            gb_per_s(12.0) as usize,
        ];
        for (r, n) in routes.iter().zip(sizes) {
            eng.start_flow(FlowSpec::new(r.clone(), n), OnComplete::Nothing);
        }
        eng.run_until_idle();
        let t = eng.now().as_secs();
        assert!((t - 1.0).abs() < 1e-4, "t = {t}");
    }
}

#[cfg(test)]
mod jitter_tests {
    use super::*;
    use mpx_topo::presets;
    use std::sync::Arc;

    fn jittered_run(seed: u64) -> u64 {
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::new(topo.clone());
        eng.set_jitter(JitterModel { seed, spread: 0.3 });
        let gpus = topo.gpus();
        let link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        for _ in 0..8 {
            eng.start_flow(FlowSpec::new(vec![link], 1 << 20), OnComplete::Nothing);
        }
        eng.run_until_idle();
        eng.now().as_nanos()
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        assert_eq!(jittered_run(7), jittered_run(7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(jittered_run(7), jittered_run(8));
    }

    #[test]
    fn jitter_perturbs_latency_within_spread() {
        let topo = Arc::new(presets::synthetic_default());
        let gpus = topo.gpus();
        let link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        // Zero-byte flow: completion time == (jittered) latency.
        for seed in 0..20u64 {
            let eng = Engine::new(topo.clone());
            eng.set_jitter(JitterModel { seed, spread: 0.3 });
            eng.start_flow(FlowSpec::new(vec![link], 0), OnComplete::Nothing);
            eng.run_until_idle();
            let t = eng.now().as_secs();
            assert!(
                (1.4e-6..=2.6e-6).contains(&t),
                "seed {seed}: latency {t} outside ±30% of 2us"
            );
        }
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn invalid_spread_rejected() {
        let eng = Engine::new(Arc::new(presets::synthetic_default()));
        eng.set_jitter(JitterModel {
            seed: 0,
            spread: 1.5,
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::new(topo.clone());
        let gpus = topo.gpus();
        let link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        // 50 GB at 50 GB/s: completes at ~1 s.
        eng.start_flow(
            FlowSpec::new(vec![link], 50_000_000_000),
            OnComplete::Nothing,
        );
        let processed = eng.run_until(SimTime::from_secs(0.5));
        assert_eq!(eng.now(), SimTime::from_secs(0.5));
        assert!(processed >= 1, "activation fired");
        assert_eq!(eng.active_flows(), 1, "flow still in flight");
        eng.run_until_idle();
        assert!((eng.now().as_secs() - 1.000002).abs() < 1e-8);
    }

    #[test]
    fn run_until_is_composable_with_new_work() {
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::new(topo.clone());
        eng.run_until(SimTime::from_secs(1.0));
        assert_eq!(eng.now(), SimTime::from_secs(1.0));
        // New work scheduled after a drained deadline still runs.
        eng.schedule_in(1e-3, OnComplete::Nothing);
        eng.run_until_idle();
        assert!((eng.now().as_secs() - 1.001).abs() < 1e-9);
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;
    use mpx_topo::presets;
    use std::sync::Arc;

    #[test]
    fn weighted_flows_finish_in_weight_order() {
        // Two equal-size flows on one link, weights 3:1 — the heavy one
        // finishes first and the light one then speeds up.
        let topo = Arc::new(presets::synthetic_default());
        let eng = Engine::with_tracing(topo.clone(), true);
        let gpus = topo.gpus();
        let link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        let n = 12_000_000_000usize; // 12 GB over a 50 GB/s link
        eng.start_flow(
            FlowSpec::new(vec![link], n)
                .with_weight(3.0)
                .labeled("prio"),
            OnComplete::Nothing,
        );
        eng.start_flow(
            FlowSpec::new(vec![link], n).labeled("bulk"),
            OnComplete::Nothing,
        );
        eng.run_until_idle();
        let trace = eng.take_trace();
        let at = |label: &str| {
            trace
                .iter()
                .find(|r| r.label == label)
                .unwrap()
                .completed
                .as_secs()
        };
        // Priority flow: 12 GB at 37.5 GB/s = 0.32 s. Bulk: 12 GB with
        // 0.32·12.5 = 4 GB done, remaining 8 GB at full 50 GB/s → 0.48 s.
        assert!((at("prio") - 0.32).abs() < 1e-3, "prio at {}", at("prio"));
        assert!((at("bulk") - 0.48).abs() < 1e-3, "bulk at {}", at("bulk"));
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_rejected() {
        let topo = Arc::new(presets::synthetic_default());
        let gpus = topo.gpus();
        let link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
        let eng = Engine::new(topo);
        eng.start_flow(
            FlowSpec::new(vec![link], 1).with_weight(-1.0),
            OnComplete::Nothing,
        );
    }
}
