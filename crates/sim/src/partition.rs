//! Connected-component partitioning of a declared workload.
//!
//! The engine's fair-share recomputation is already *component-scoped*
//! (PR 1): only flows transitively sharing a link ever influence each
//! other's rates, completion times, or byte accounting. This module
//! turns that isolation into an execution strategy. A [`Partitioner`]
//! is an incremental union-find over the topology's links: admitting a
//! flow unions every link of its route, admitting a fault pins the
//! fault to its link's partition. A flow whose route bridges two
//! partitions that both already carry work triggers a **rebalance** —
//! the partitions merge, and every event previously routed to either
//! side is re-routed to the merged partition (counted as
//! [`PartitionPlan::cross_component_events`]).
//!
//! The output, a [`PartitionPlan`], maps every declared flow and fault
//! to exactly one partition. Partitions share no links, so the
//! [`crate::parallel`] runner can simulate each on its own engine with
//! its own event queue and virtual clock and still merge to a result
//! bit-identical to the serial engine.

use crate::fault::FaultPlan;
use crate::time::SimTime;
use mpx_topo::LinkId;

/// Incremental union-find over link indices, with occupancy tracking so
/// merges of two *working* partitions are distinguishable from a flow
/// merely growing its own component.
#[derive(Debug, Clone)]
pub struct Partitioner {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Root-indexed: the partition carries at least one admitted event.
    occupied: Vec<bool>,
    rebalances: u64,
    /// `(virtual time, absorbed root, surviving root)` per rebalance.
    merges: Vec<(SimTime, usize, usize)>,
}

impl Partitioner {
    /// A partitioner over `nlinks` links, every link its own partition.
    pub fn new(nlinks: usize) -> Partitioner {
        Partitioner {
            parent: (0..nlinks as u32).collect(),
            rank: vec![0; nlinks],
            occupied: vec![false; nlinks],
            rebalances: 0,
            merges: Vec::new(),
        }
    }

    /// The current partition root of `link` (path-halving find).
    pub fn find(&mut self, link: usize) -> usize {
        let mut l = link;
        while self.parent[l] as usize != l {
            let grand = self.parent[self.parent[l] as usize];
            self.parent[l] = grand;
            l = grand as usize;
        }
        l
    }

    /// Unions the partitions of `a` and `b`; returns the surviving root.
    /// When both sides already carried work this is a **rebalance**: the
    /// merge is counted and recorded at virtual time `at`.
    fn union(&mut self, a: usize, b: usize, at: SimTime) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        if self.occupied[ra] && self.occupied[rb] {
            self.rebalances += 1;
        }
        let (winner, loser) = match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Equal => {
                self.rank[ra] += 1;
                (ra, rb)
            }
        };
        self.parent[loser] = winner as u32;
        self.occupied[winner] = self.occupied[winner] || self.occupied[loser];
        if self.occupied[winner] {
            self.merges.push((at, loser, winner));
        }
        winner
    }

    /// Admits a flow at virtual time `at`: unions its route's links and
    /// returns the owning partition root *at admission*. Later merges
    /// may re-route the flow; resolve with [`Partitioner::find`] after
    /// all admissions.
    pub fn admit_flow(&mut self, route: &[LinkId], at: SimTime) -> usize {
        assert!(!route.is_empty(), "cannot partition an empty route");
        let mut root = self.find(route[0].index());
        for l in &route[1..] {
            root = self.union(root, l.index(), at);
        }
        self.occupied[root] = true;
        root
    }

    /// Admits a fault at virtual time `at`: the fault belongs to its
    /// link's partition (no unions — a fault cannot bridge components).
    pub fn admit_fault(&mut self, link: LinkId, _at: SimTime) -> usize {
        let root = self.find(link.index());
        self.occupied[root] = true;
        root
    }

    /// Rebalances so far: merges that combined two occupied partitions.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Recorded merges of occupied partitions, in admission order:
    /// `(virtual time, absorbed root, surviving root)`.
    pub fn merges(&self) -> &[(SimTime, usize, usize)] {
        &self.merges
    }

    /// Number of occupied partitions under the current unions.
    pub fn occupied_partitions(&mut self) -> usize {
        let n = self.parent.len();
        let mut roots = vec![false; n];
        let mut count = 0;
        for l in 0..n {
            if !self.occupied[l] {
                continue;
            }
            let r = self.find(l);
            // Occupancy may have been stamped on a pre-merge root; only
            // count each live root once.
            if !roots[r] {
                roots[r] = true;
                count += 1;
            }
        }
        count
    }
}

/// One executable partition of a declared scenario.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Surviving union-find root (a link index) identifying the
    /// partition.
    pub root: usize,
    /// Declaration indices of the flows this partition simulates, in
    /// declaration order (the order the serial engine would push them).
    pub flows: Vec<usize>,
    /// Indices into the scenario's [`FaultPlan`] routed here, in plan
    /// order.
    pub faults: Vec<usize>,
}

/// A declared scenario decomposed into disjoint partitions, plus the
/// decomposition counters surfaced through
/// [`crate::StatsSnapshot::partitions`] and friends.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Executable partitions, largest flow count first (deterministic:
    /// ties break on root index). Only occupied partitions appear.
    pub parts: Vec<Partition>,
    /// Number of occupied partitions (`parts.len()`).
    pub partitions: u64,
    /// Merges of two occupied partitions forced by bridging flows.
    pub rebalances: u64,
    /// Admitted events whose final partition differs from their
    /// partition at admission (re-routed across a rebalance).
    pub cross_component_events: u64,
    /// `(virtual time, absorbed root, surviving root)` per rebalance,
    /// for telemetry.
    pub merges: Vec<(SimTime, usize, usize)>,
}

/// Builds the partition plan for a declared workload: `flows` is the
/// declaration list as `(issue time, route)`, `faults` the fault plan.
/// Admissions are processed in virtual-time order (ties: flows before
/// faults, then declaration order) — exactly the order the events would
/// first become visible to a running engine — so a fault admitted
/// before a later bridging flow genuinely lands mid-rebalance and is
/// re-routed, which is what `cross_component_events` measures.
pub fn partition_scenario(
    nlinks: usize,
    flows: &[(SimTime, Vec<LinkId>)],
    faults: &FaultPlan,
) -> PartitionPlan {
    let mut p = Partitioner::new(nlinks);

    // Admission stream: (time, category, index). Category 0 = flow,
    // 1 = fault, matching the serial engine's push order for ties.
    let mut order: Vec<(SimTime, u8, usize)> =
        Vec::with_capacity(flows.len() + faults.events.len());
    for (i, (at, _)) in flows.iter().enumerate() {
        order.push((*at, 0, i));
    }
    for (i, ev) in faults.events.iter().enumerate() {
        order.push((SimTime::from_secs(ev.at.max(0.0)), 1, i));
    }
    order.sort();

    let mut flow_admit_root = vec![usize::MAX; flows.len()];
    let mut fault_admit_root = vec![usize::MAX; faults.events.len()];
    for &(at, cat, idx) in &order {
        if cat == 0 {
            flow_admit_root[idx] = p.admit_flow(&flows[idx].1, at);
        } else {
            fault_admit_root[idx] = p.admit_fault(faults.events[idx].link, at);
        }
    }

    // Resolve final owners and count cross-component re-routes.
    let mut cross = 0u64;
    let mut parts_by_root: std::collections::BTreeMap<usize, Partition> =
        std::collections::BTreeMap::new();
    for (i, &root) in flow_admit_root.iter().enumerate() {
        let fin = p.find(root);
        if fin != root {
            cross += 1;
        }
        parts_by_root
            .entry(fin)
            .or_insert_with(|| Partition {
                root: fin,
                flows: Vec::new(),
                faults: Vec::new(),
            })
            .flows
            .push(i);
    }
    for (i, &root) in fault_admit_root.iter().enumerate() {
        let fin = p.find(root);
        if fin != root {
            cross += 1;
        }
        parts_by_root
            .entry(fin)
            .or_insert_with(|| Partition {
                root: fin,
                flows: Vec::new(),
                faults: Vec::new(),
            })
            .faults
            .push(i);
    }

    let mut parts: Vec<Partition> = parts_by_root.into_values().collect();
    // Largest first so the worker pool drains the long pole early; ties
    // on root index keep the order deterministic.
    parts.sort_by(|a, b| b.flows.len().cmp(&a.flows.len()).then(a.root.cmp(&b.root)));
    let partitions = parts.len() as u64;
    PartitionPlan {
        parts,
        partitions,
        rebalances: p.rebalances(),
        cross_component_events: cross,
        merges: p.merges().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};

    fn lid(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn disjoint_routes_stay_separate() {
        let flows = vec![
            (SimTime::ZERO, vec![lid(0)]),
            (SimTime::ZERO, vec![lid(1)]),
            (SimTime::ZERO, vec![lid(2), lid(3)]),
        ];
        let plan = partition_scenario(8, &flows, &FaultPlan::empty());
        assert_eq!(plan.partitions, 3);
        assert_eq!(plan.rebalances, 0);
        assert_eq!(plan.cross_component_events, 0);
    }

    #[test]
    fn bridging_flow_rebalances_and_reroutes() {
        // Flows on links 0 and 1 at t=0; a fault lands on link 1 at
        // t=0.3; a bridge [0,1] arrives at t=0.4. The bridge merges the
        // two occupied partitions (one rebalance) and everything
        // admitted to the absorbed side is re-routed.
        let flows = vec![
            (SimTime::ZERO, vec![lid(0)]),
            (SimTime::ZERO, vec![lid(1)]),
            (SimTime::from_secs(0.4), vec![lid(0), lid(1)]),
        ];
        let faults = FaultPlan::empty().with(0.3, lid(1), FaultKind::Kill);
        let plan = partition_scenario(4, &flows, &faults);
        assert_eq!(plan.partitions, 1);
        assert_eq!(plan.rebalances, 1);
        // The absorbed side's flow and its fault both crossed; possibly
        // the bridge itself depending on which root survived. At least
        // the loser's two events must have been re-routed.
        assert!(
            plan.cross_component_events >= 2,
            "cross = {}",
            plan.cross_component_events
        );
        assert_eq!(plan.merges.len(), 1);
        assert_eq!(plan.merges[0].0, SimTime::from_secs(0.4));
        let p = &plan.parts[0];
        assert_eq!(p.flows, vec![0, 1, 2]);
        assert_eq!(p.faults, vec![0]);
    }

    #[test]
    fn fault_on_unused_link_gets_own_partition() {
        let flows = vec![(SimTime::ZERO, vec![lid(0)])];
        let faults = FaultPlan::empty().with(0.1, lid(5), FaultKind::Kill);
        let plan = partition_scenario(8, &flows, &faults);
        assert_eq!(plan.partitions, 2);
        let fault_part = plan.parts.iter().find(|p| !p.faults.is_empty()).unwrap();
        assert!(fault_part.flows.is_empty());
        assert_eq!(fault_part.root, 5);
    }

    #[test]
    fn growing_own_component_is_not_a_rebalance() {
        // One flow spanning three links, then more flows inside the same
        // component: unions happen but never merge two occupied sides.
        let flows = vec![
            (SimTime::ZERO, vec![lid(0), lid(1), lid(2)]),
            (SimTime::ZERO, vec![lid(1)]),
            (SimTime::ZERO, vec![lid(2), lid(0)]),
        ];
        let plan = partition_scenario(4, &flows, &FaultPlan::empty());
        assert_eq!(plan.partitions, 1);
        assert_eq!(plan.rebalances, 0);
    }

    #[test]
    fn partitions_order_largest_first_deterministically() {
        let flows = vec![
            (SimTime::ZERO, vec![lid(3)]),
            (SimTime::ZERO, vec![lid(1)]),
            (SimTime::ZERO, vec![lid(1)]),
            (SimTime::ZERO, vec![lid(5)]),
        ];
        let plan = partition_scenario(8, &flows, &FaultPlan::empty());
        assert_eq!(plan.parts[0].root, 1); // two flows
        assert_eq!(plan.parts[0].flows, vec![1, 2]);
        assert_eq!(plan.parts[1].root, 3); // tie on size: smaller root
        assert_eq!(plan.parts[2].root, 5);
    }
}
