//! Simulated time: integer nanoseconds since simulation start.

use mpx_topo::units::Secs;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Far future; used as a sentinel for "never".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Converts seconds into a time point, rounding up so that an event
    /// never fires *before* its analytic time.
    pub fn from_secs(s: Secs) -> SimTime {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * 1e9).ceil() as u64)
    }

    /// This time point in (floating) seconds.
    pub fn as_secs(self) -> Secs {
        self.0 as f64 * 1e-9
    }

    /// Nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Adds a (non-negative) duration in seconds, rounding up.
    pub fn after(self, s: Secs) -> SimTime {
        self + SimTime::from_secs(s)
    }

    /// Saturating difference in seconds.
    pub fn secs_since(self, earlier: SimTime) -> Secs {
        (self.0.saturating_sub(earlier.0)) as f64 * 1e-9
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0 as f64 / 1e3;
        write!(f, "{us:.3}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_secs_rounds_up() {
        assert_eq!(SimTime::from_secs(1e-9), SimTime(1));
        assert_eq!(SimTime::from_secs(1.5e-9), SimTime(2));
        assert_eq!(SimTime::from_secs(0.0), SimTime::ZERO);
    }

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs(12.345);
        assert!((t.as_secs() - 12.345).abs() < 1e-8);
    }

    #[test]
    fn after_accumulates() {
        let t = SimTime::ZERO.after(1e-6).after(2e-6);
        assert_eq!(t, SimTime(3000));
    }

    #[test]
    fn secs_since_saturates() {
        let a = SimTime(1000);
        let b = SimTime(4000);
        assert!((b.secs_since(a) - 3e-6).abs() < 1e-15);
        assert_eq!(a.secs_since(b), 0.0);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::NEVER + SimTime(1), SimTime::NEVER);
        assert_eq!(SimTime(5) - SimTime(10), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimTime::ZERO < SimTime::NEVER);
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(SimTime(2500).to_string(), "2.500us");
    }
}
