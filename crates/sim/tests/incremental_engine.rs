//! Component-scoped recomputation: flows on disjoint links must not
//! perturb each other — no rate change, no generation bump, and no
//! rescheduled completion events.

use mpx_sim::{Engine, FlowSpec, OnComplete};
use mpx_topo::{LinkId, Topology};
use std::sync::Arc;

/// Two GPU-pair links sharing no endpoint (and hence, in these presets,
/// no underlying channel).
fn disjoint_links(topo: &Topology) -> (LinkId, LinkId) {
    let gpus = topo.gpus();
    for (i, &a) in gpus.iter().enumerate() {
        for &b in &gpus[i + 1..] {
            let Ok(l1) = topo.link_between(a, b) else {
                continue;
            };
            for (j, &c) in gpus.iter().enumerate() {
                for &d in &gpus[j + 1..] {
                    if c == a || c == b || d == a || d == b {
                        continue;
                    }
                    if let Ok(l2) = topo.link_between(c, d) {
                        return (l1.id, l2.id);
                    }
                }
            }
        }
    }
    panic!("preset has no two endpoint-disjoint GPU links");
}

/// Link-disjoint flows schedule exactly one completion event each: the
/// second flow's arrival and departure must not touch the first flow's
/// component, so nothing is ever rescheduled.
#[test]
fn disjoint_flows_schedule_zero_reschedules() {
    let topo = Arc::new(mpx_topo::presets::beluga());
    let eng = Engine::new(topo.clone());
    let (l1, l2) = disjoint_links(&topo);
    eng.start_flow(FlowSpec::new(vec![l1], 1 << 30), OnComplete::Nothing);
    eng.start_flow(FlowSpec::new(vec![l2], 3 << 30), OnComplete::Nothing);
    eng.run_until_idle();
    let stats = eng.stats();
    assert_eq!(stats.flows_completed, 2);
    // 2 activations + 2 completions; any rescheduling would push more.
    assert_eq!(stats.events_scheduled, 4, "disjoint flows were rescheduled");
    assert_eq!(stats.events_processed, 4);
}

/// Contrast case: flows *sharing* a link do reschedule each other.
#[test]
fn contending_flows_do_reschedule() {
    let topo = Arc::new(mpx_topo::presets::beluga());
    let eng = Engine::new(topo.clone());
    let (l1, _) = disjoint_links(&topo);
    eng.start_flow(FlowSpec::new(vec![l1], 1 << 30), OnComplete::Nothing);
    eng.start_flow(FlowSpec::new(vec![l1], 3 << 30), OnComplete::Nothing);
    eng.run_until_idle();
    let stats = eng.stats();
    assert_eq!(stats.flows_completed, 2);
    assert!(
        stats.events_scheduled > 4,
        "expected reschedules on a shared link, got {}",
        stats.events_scheduled
    );
}

/// A disjoint latecomer leaves the first flow's completion time bit-exact
/// versus running it alone.
#[test]
fn disjoint_latecomer_does_not_shift_completion() {
    let topo = Arc::new(mpx_topo::presets::beluga());
    let (l1, l2) = disjoint_links(&topo);

    let solo = Engine::with_tracing(topo.clone(), true);
    solo.start_flow(
        FlowSpec::new(vec![l1], 1 << 30).labeled("a"),
        OnComplete::Nothing,
    );
    solo.run_until_idle();
    let solo_done = solo.take_trace()[0].completed;

    let both = Engine::with_tracing(topo.clone(), true);
    both.start_flow(
        FlowSpec::new(vec![l1], 1 << 30).labeled("a"),
        OnComplete::Nothing,
    );
    // Injected mid-flight, on links flow `a` never crosses.
    both.schedule_in(
        1e-3,
        OnComplete::Call(Box::new(move |ctx| {
            ctx.start_flow(FlowSpec::new(vec![l2], 2 << 30), OnComplete::Nothing);
        })),
    );
    both.run_until_idle();
    let done = both
        .take_trace()
        .iter()
        .find(|r| r.label == "a")
        .unwrap()
        .completed;
    assert_eq!(done, solo_done, "latecomer on disjoint links shifted `a`");
}

/// Byte accounting stays exact even though disjoint components drain
/// lazily: every flow's full payload lands on its links by idle time.
#[test]
fn lazy_drain_conserves_bytes() {
    let topo = Arc::new(mpx_topo::presets::beluga());
    let eng = Engine::new(topo.clone());
    let (l1, l2) = disjoint_links(&topo);
    let (n1, n2) = (123_456_789usize, 987_654_321usize);
    eng.start_flow(FlowSpec::new(vec![l1], n1), OnComplete::Nothing);
    eng.start_flow(FlowSpec::new(vec![l2], n2), OnComplete::Nothing);
    eng.run_until_idle();
    let stats = eng.stats();
    assert!((stats.links[l1.index()].bytes - n1 as f64).abs() < 1.0);
    assert!((stats.links[l2.index()].bytes - n2 as f64).abs() < 1.0);
}
