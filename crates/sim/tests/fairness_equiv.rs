//! Oracle equivalence for the incremental fair-share allocator.
//!
//! [`mpx_sim::FairShareScratch`] is the engine's fast path; the original
//! [`mpx_sim::max_min_rates`] linear-scan implementation is kept as the
//! reference oracle. This suite drives both over random topologies,
//! weights, and add/remove sequences — reusing one scratch across every
//! step, exactly as the engine does — and requires agreement to 1e-9
//! relative on every flow.

use mpx_sim::{max_min_rates, max_min_rates_fast, FairShareScratch, FlowDemand};
use proptest::collection::vec;
use proptest::prelude::*;

/// One mutation of the live-flow set.
#[derive(Debug, Clone)]
struct Op {
    /// Add a flow (or, when `false`, remove one if any are live).
    add: bool,
    /// Route for an added flow; may be empty (unconstrained flow) and may
    /// repeat links (multiplicity).
    route: Vec<usize>,
    /// QoS weight for an added flow.
    weight: f64,
    /// Pick which live flow a removal takes (mod the live count).
    victim: usize,
}

fn arb_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Op>)> {
    (1usize..10).prop_flat_map(|nlinks| {
        let caps = vec(0.5f64..400.0, nlinks);
        let ops = vec(
            (
                proptest::bool::ANY,
                vec(0usize..nlinks, 0..5),
                0.5f64..4.0,
                0usize..64,
            )
                .prop_map(|(add, route, weight, victim)| Op {
                    add,
                    route,
                    weight,
                    victim,
                }),
            1..20,
        );
        (caps, ops)
    })
}

fn assert_close(oracle: &[f64], fast: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(oracle.len(), fast.len());
    for (i, (&a, &b)) in oracle.iter().zip(fast).enumerate() {
        if a.is_infinite() || b.is_infinite() {
            prop_assert!(a == b, "flow {i}: oracle {a}, fast {b}");
            continue;
        }
        let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
        prop_assert!(
            (a - b).abs() <= tol,
            "flow {i}: oracle {a}, fast {b}, |diff| {}",
            (a - b).abs()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The engine's usage pattern: one persistent scratch, live set
    /// mutated by adds and removes, rates recomputed after every step.
    #[test]
    fn incremental_allocator_matches_oracle((caps, ops) in arb_scenario()) {
        let mut live: Vec<FlowDemand> = Vec::new();
        let mut scratch = FairShareScratch::default();
        let mut rates = Vec::new();
        for op in &ops {
            if op.add || live.is_empty() {
                live.push(FlowDemand::from_route_weighted(&op.route, op.weight));
            } else {
                live.remove(op.victim % live.len());
            }
            let oracle = max_min_rates(&caps, &live);
            scratch.compute_with(&caps, live.len(), |i| &live[i], &mut rates);
            assert_close(&oracle, &rates)?;
        }
    }

    /// The one-shot wrapper agrees too (fresh scratch per call).
    #[test]
    fn one_shot_wrapper_matches_oracle((caps, ops) in arb_scenario()) {
        let flows: Vec<FlowDemand> = ops
            .iter()
            .map(|op| FlowDemand::from_route_weighted(&op.route, op.weight))
            .collect();
        let oracle = max_min_rates(&caps, &flows);
        let fast = max_min_rates_fast(&caps, &flows);
        assert_close(&oracle, &fast)?;
    }
}

/// Non-random spot checks of the fast path against hand-computed values,
/// mirroring the oracle's own unit tests.
#[test]
fn fast_path_spot_checks() {
    let d = |r: &[usize]| FlowDemand::from_route(r);
    assert_eq!(
        max_min_rates_fast(&[10.0, 4.0, 8.0], &[d(&[0, 1, 2])]),
        vec![4.0]
    );
    assert_eq!(
        max_min_rates_fast(&[10.0], &[d(&[0]), d(&[0])]),
        vec![5.0, 5.0]
    );
    assert_eq!(
        max_min_rates_fast(&[2.0, 10.0], &[d(&[0, 1]), d(&[1])]),
        vec![2.0, 8.0]
    );
    // Weighted 3:1 split of a 12-unit link.
    let w = max_min_rates_fast(
        &[12.0],
        &[
            FlowDemand::from_route_weighted(&[0], 3.0),
            FlowDemand::from_route_weighted(&[0], 1.0),
        ],
    );
    assert!(
        (w[0] - 9.0).abs() < 1e-12 && (w[1] - 3.0).abs() < 1e-12,
        "{w:?}"
    );
    // Unconstrained flows stay unconstrained.
    let u = max_min_rates_fast(&[10.0], &[FlowDemand::default(), d(&[0])]);
    assert_eq!(u, vec![f64::INFINITY, 10.0]);
}
