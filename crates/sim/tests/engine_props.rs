//! Property-based tests of the discrete-event engine: byte conservation,
//! virtual-time sanity, and fairness bounds over randomized flow sets.

use mpx_sim::{Engine, FlowSpec, OnComplete};
use mpx_topo::presets::{synthetic, SyntheticSpec};
use mpx_topo::units::gb_per_s;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct FlowCase {
    src: usize,
    dst: usize,
    bytes: usize,
    delay_us: u32,
}

fn arb_flows() -> impl Strategy<Value = Vec<FlowCase>> {
    proptest::collection::vec(
        (0usize..4, 0usize..4, 1usize..(1 << 24), 0u32..500).prop_filter_map(
            "distinct endpoints",
            |(src, dst, bytes, delay_us)| {
                (src != dst).then_some(FlowCase {
                    src,
                    dst,
                    bytes,
                    delay_us,
                })
            },
        ),
        1..12,
    )
}

fn topo() -> Arc<mpx_topo::Topology> {
    Arc::new(synthetic(SyntheticSpec {
        gpus: 4,
        nvlink_bw: gb_per_s(50.0),
        ..SyntheticSpec::default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bytes_are_conserved(flows in arb_flows()) {
        let topo = topo();
        let eng = Engine::new(topo.clone());
        let mut expected = vec![0.0f64; topo.link_count()];
        for f in &flows {
            let gpus = topo.gpus();
            let link = topo.link_between(gpus[f.src], gpus[f.dst]).unwrap().id;
            expected[link.index()] += f.bytes as f64;
            let spec = FlowSpec::new(vec![link], f.bytes)
                .with_extra_latency(f.delay_us as f64 * 1e-6);
            eng.start_flow(spec, OnComplete::Nothing);
        }
        eng.run_until_idle();
        let stats = eng.stats();
        prop_assert_eq!(stats.flows_issued, flows.len() as u64);
        prop_assert_eq!(stats.flows_completed, flows.len() as u64);
        for (l, (got, want)) in stats.links.iter().zip(&expected).enumerate() {
            prop_assert!(
                (got.bytes - want).abs() < 1.0,
                "link {l}: carried {} expected {want}",
                got.bytes
            );
        }
    }

    #[test]
    fn makespan_bounded_by_serial_and_ideal(flows in arb_flows()) {
        // The makespan is at least the best-case (every flow at full link
        // rate, maximal per-link aggregation) and at most the serial
        // sum of all flows end to end.
        let topo = topo();
        let eng = Engine::new(topo.clone());
        let gpus = topo.gpus();
        let mut serial = 0.0f64;
        let mut per_link_ideal = vec![0.0f64; topo.link_count()];
        for f in &flows {
            let link = topo.link_between(gpus[f.src], gpus[f.dst]).unwrap();
            let t = f.delay_us as f64 * 1e-6 + link.transfer_time(f.bytes);
            serial += t;
            per_link_ideal[link.id.index()] += f.bytes as f64 / link.bandwidth;
            eng.start_flow(
                FlowSpec::new(vec![link.id], f.bytes)
                    .with_extra_latency(f.delay_us as f64 * 1e-6),
                OnComplete::Nothing,
            );
        }
        let ideal = per_link_ideal.iter().cloned().fold(0.0f64, f64::max);
        eng.run_until_idle();
        let makespan = eng.now().as_secs();
        // Every event time is ceiled to whole nanoseconds; allow a few
        // ns of rounding per flow.
        let slack = (4 * flows.len()) as f64 * 1e-9;
        prop_assert!(
            makespan <= serial + slack,
            "{makespan} > serial {serial}"
        );
        prop_assert!(
            makespan >= ideal - 1e-9,
            "{makespan} beats the per-link ideal {ideal}"
        );
    }

    #[test]
    fn events_processed_scales_linearly(flows in arb_flows()) {
        // Each flow contributes O(flows) events (activation, completion,
        // rescheduled completions after rate changes). Guard against
        // accidental quadratic blowup in the fairness recompute.
        let topo = topo();
        let eng = Engine::new(topo.clone());
        let gpus = topo.gpus();
        for f in &flows {
            let link = topo.link_between(gpus[f.src], gpus[f.dst]).unwrap().id;
            eng.start_flow(FlowSpec::new(vec![link], f.bytes), OnComplete::Nothing);
        }
        eng.run_until_idle();
        let events = eng.stats().events_processed;
        let bound = (2 * flows.len() * (flows.len() + 1)) as u64 + 4;
        prop_assert!(
            events <= bound,
            "{events} events for {} flows (bound {bound})",
            flows.len()
        );
    }
}
