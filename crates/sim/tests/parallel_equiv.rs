//! Serial-oracle equivalence for the partitioned parallel engine.
//!
//! [`mpx_sim::Scenario::run_parallel`] promises **bit-identical** output
//! to [`mpx_sim::Scenario::run_serial`] — same canonical completion
//! order, same completion/activation times (integer nanoseconds), same
//! per-link byte totals (same f64 bits), same stats counters. This suite
//! pins that promise the way `fairness_equiv.rs` pins the fair-share
//! oracle: 1000 random scenarios over multi-node cluster topologies —
//! random routes (including bridging flows that force mid-run partition
//! rebalances), staggered issue times, seeded latency jitter, and fault
//! storms mixing degrades, latency spikes, flaps, and kills — each run
//! serial and parallel at 1, 2, 4, and 8 workers.

use mpx_sim::{equivalence_diff, FaultKind, FaultPlan, FlowSpec, JitterModel, Scenario};
use mpx_topo::{presets, LinkId};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Links per 4-GPU cluster node: 6 GPU pairs × 2 + 4 PCIe × 2 + 1 DRAM.
const NODE_LINKS: usize = 21;

/// One generated flow: intra-node link offsets on `node`, optionally a
/// bridging link on another node (which merges two partitions when they
/// are both occupied), byte count, and issue time.
type FlowGen = (usize, Vec<usize>, bool, (usize, usize), usize, f64);

/// One generated fault: time, global link index, kind selector, factor,
/// duration.
type FaultGen = (f64, usize, u8, f64, f64);

type Case = (usize, Vec<FlowGen>, Vec<FaultGen>, bool, (u64, f64), u64);

fn arb_case() -> impl Strategy<Value = Case> {
    (2usize..5).prop_flat_map(|nodes| {
        let flow = (
            0usize..nodes,
            vec(0usize..NODE_LINKS, 1..4),
            proptest::bool::ANY,
            (0usize..nodes, 0usize..NODE_LINKS),
            1usize..(4 << 20),
            0.0f64..0.01,
        );
        let fault = (
            0.0f64..0.012,
            0usize..nodes * NODE_LINKS,
            0u8..4,
            0.05f64..0.95,
            1e-4f64..5e-3,
        );
        (
            Just(nodes),
            vec(flow, 1..30),
            vec(fault, 0..10),
            proptest::bool::ANY,
            (0u64..(1 << 48), 0.01f64..0.4),
            0u64..(1 << 48),
        )
    })
}

fn build_scenario(case: &Case) -> Scenario {
    let (nodes, flows, faults, jitter_on, (jseed, jspread), tie) = case;
    let topo = Arc::new(presets::cluster(*nodes, 4));
    let mut sc = Scenario::new(topo).with_tie_seed(*tie);
    if *jitter_on {
        sc = sc.with_jitter(JitterModel {
            seed: *jseed,
            spread: *jspread,
        });
    }
    for (node, offsets, bridge, (bnode, boff), bytes, at) in flows {
        let mut route: Vec<LinkId> = offsets
            .iter()
            .map(|off| LinkId((node * NODE_LINKS + off) as u32))
            .collect();
        if *bridge && bnode != node {
            route.push(LinkId((bnode * NODE_LINKS + boff) as u32));
        }
        sc = sc.flow_at(*at, FlowSpec::new(route, *bytes));
    }
    let mut plan = FaultPlan::empty();
    for (at, link, kind, factor, duration) in faults {
        let kind = match kind {
            0 => FaultKind::Degrade { factor: *factor },
            1 => FaultKind::LatencySpike {
                factor: 1.0 + factor * 4.0,
                duration: *duration,
            },
            2 => FaultKind::Flap {
                duration: *duration,
            },
            _ => FaultKind::Kill,
        };
        plan = plan.with(*at, LinkId(*link as u32), kind);
    }
    sc.with_faults(plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Every random scenario produces bit-identical output in serial and
    /// parallel mode, at every worker count.
    #[test]
    fn parallel_is_bit_identical_to_serial(case in arb_case()) {
        let sc = build_scenario(&case);
        let serial = sc.run_serial();
        for workers in [1usize, 2, 4, 8] {
            let par = sc.run_parallel(workers);
            if let Some(diff) = equivalence_diff(&serial, &par) {
                return Err(TestCaseError::fail(format!(
                    "serial/parallel divergence at {workers} workers: {diff}"
                )));
            }
            // Per-partition event counts must decompose the serial total.
            let sum: u64 = par.partitions.iter().map(|p| p.events_processed).sum();
            prop_assert_eq!(sum, serial.stats.events_processed);
            prop_assert_eq!(par.partitions.len() as u64, par.stats.partitions);
        }
        // The decomposition is reported identically in both modes.
        prop_assert!(serial.stats.partitions >= 1);
    }
}

/// Seeded storm soaks: `FaultPlan::random_soak` campaigns (the chaos-soak
/// generator) against a 6-node cluster with flows on every node, checked
/// at 8 workers across 20 seeds.
#[test]
fn random_soak_storms_stay_bit_identical() {
    let topo = Arc::new(presets::cluster(6, 4));
    for seed in 0..20u64 {
        let plan = FaultPlan::random_soak(&topo, seed, 0.02, 24, &[]);
        let mut sc = Scenario::new(topo.clone())
            .with_tie_seed(seed)
            .with_jitter(JitterModel { seed, spread: 0.2 })
            .with_faults(plan);
        for node in 0..6usize {
            for k in 0..4usize {
                let off = (seed as usize + k) % 12;
                let route = vec![LinkId((node * NODE_LINKS + off) as u32)];
                let at = k as f64 * 1e-3;
                sc = sc.flow_at(at, FlowSpec::new(route, (1 << 20) + (node << 12) + k));
            }
        }
        let serial = sc.run_serial();
        let par = sc.run_parallel(8);
        assert_eq!(
            equivalence_diff(&serial, &par),
            None,
            "storm seed {seed} diverged"
        );
        assert!(serial.stats.faults_fired > 0, "storm seed {seed} was inert");
    }
}

/// A kill that lands on a partition *while* a later bridging flow merges
/// it into another partition must stall the same flows at the same
/// virtual times in both modes (satellite regression; the unit-level
/// variant lives in `mpx_sim::parallel::tests`).
#[test]
fn kill_during_rebalance_is_bit_identical() {
    let topo = Arc::new(presets::cluster(2, 4));
    let l_a = LinkId(0); // node 0, gpu pair
    let l_b = LinkId(NODE_LINKS as u32); // node 1, gpu pair
    let big = 50_000_000_000usize; // ~1 s at 50 GB/s
    let sc = Scenario::new(topo)
        .flow(FlowSpec::new(vec![l_a], big).labeled("a"))
        .flow(FlowSpec::new(vec![l_b], big).labeled("b"))
        .flow_at(
            0.4,
            FlowSpec::new(vec![l_a, l_b], big / 4).labeled("bridge"),
        )
        .with_faults(FaultPlan::empty().with(0.3, l_b, FaultKind::Kill));
    let serial = sc.run_serial();
    for workers in [1usize, 2, 4, 8] {
        let par = sc.run_parallel(workers);
        assert_eq!(equivalence_diff(&serial, &par), None, "workers={workers}");
    }
    assert_eq!(serial.stats.partitions, 1, "bridge must merge the nodes");
    assert_eq!(serial.stats.rebalances, 1);
    assert_eq!(serial.stats.flows_completed, 1);
    assert_eq!(serial.stats.flows_stalled, 2);
}
