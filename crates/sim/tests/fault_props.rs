//! Property-based tests of the fault-injection layer: injected
//! degradation must never let max-min rates exceed the *perturbed*
//! capacity of any link, and faulted runs must still conserve bytes.
//!
//! The observable is byte accounting: if any flow ever ran faster than a
//! degraded link allowed, the run would finish in less virtual time than
//! the perturbed capacity can physically carry — i.e. the link's carried
//! bytes would exceed the integral of its capacity over the run.

use mpx_sim::{Engine, FaultKind, FaultPlan, FlowSpec, OnComplete};
use mpx_topo::presets::{synthetic, SyntheticSpec};
use mpx_topo::units::gb_per_s;
use mpx_topo::LinkId;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct FlowCase {
    src: usize,
    dst: usize,
    bytes: usize,
}

#[derive(Debug, Clone)]
struct DegradeCase {
    link: usize,
    at: f64,
    factor: f64,
}

fn arb_flows() -> impl Strategy<Value = Vec<FlowCase>> {
    proptest::collection::vec(
        (0usize..4, 0usize..4, (1usize << 16)..(1 << 25))
            .prop_filter_map("distinct endpoints", |(src, dst, bytes)| {
                (src != dst).then_some(FlowCase { src, dst, bytes })
            }),
        1..10,
    )
}

fn arb_degrades(nlinks: usize) -> impl Strategy<Value = Vec<DegradeCase>> {
    proptest::collection::vec(
        (0usize..nlinks, 0.0f64..0.01, 0.1f64..0.95).prop_map(|(link, at, factor)| DegradeCase {
            link,
            at,
            factor,
        }),
        0..8,
    )
}

fn topo() -> Arc<mpx_topo::Topology> {
    Arc::new(synthetic(SyntheticSpec {
        gpus: 4,
        nvlink_bw: gb_per_s(50.0),
        ..SyntheticSpec::default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Carried bytes per link never exceed the time-integral of the
    /// link's (degradation-perturbed) capacity, and every byte still
    /// arrives.
    #[test]
    fn degraded_rates_respect_perturbed_capacity(
        flows in arb_flows(),
        degrades in arb_degrades(12),
    ) {
        let topo = topo();
        let nlinks = topo.link_count();
        let eng = Engine::new(topo.clone());

        let mut plan = FaultPlan::empty();
        for d in &degrades {
            if d.link >= nlinks {
                continue;
            }
            plan = plan.with(
                d.at,
                LinkId(d.link as u32),
                FaultKind::Degrade { factor: d.factor },
            );
        }
        mpx_sim::FaultInjector::install(&eng, &plan);

        let gpus = topo.gpus();
        let mut expected = vec![0.0f64; nlinks];
        for f in &flows {
            let link = topo.link_between(gpus[f.src], gpus[f.dst]).unwrap().id;
            expected[link.index()] += f.bytes as f64;
            eng.start_flow(FlowSpec::new(vec![link], f.bytes), OnComplete::Nothing);
        }
        eng.run_until_idle();
        let stats = eng.stats();
        let end = stats.now.as_secs();
        prop_assert_eq!(stats.faults_fired as usize, plan.events.len());

        // Per-link capacity integral over [0, end] under the degrade
        // schedule (events sorted by time; factors compose).
        for (l, link_expected) in expected.iter().enumerate() {
            let mut events: Vec<(f64, f64)> = plan
                .events
                .iter()
                .filter(|e| e.link.index() == l)
                .map(|e| match e.kind {
                    FaultKind::Degrade { factor } => (e.at, factor),
                    _ => unreachable!("plan only holds degrades"),
                })
                .collect();
            events.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut cap = topo.link(LinkId(l as u32)).unwrap().bandwidth;
            let mut t = 0.0f64;
            let mut budget = 0.0f64;
            for (at, factor) in events {
                let at = at.min(end);
                budget += cap * (at - t).max(0.0);
                cap *= factor;
                t = at.max(t);
            }
            budget += cap * (end - t).max(0.0);

            // Quantization slack: event times round up to whole ns.
            let slack = 1e-6 * budget + 1024.0;
            prop_assert!(
                stats.links[l].bytes <= budget + slack,
                "link {l} carried {} bytes but perturbed capacity only \
                 allows {budget} over {end}s",
                stats.links[l].bytes,
            );
            // And conservation: degradation slows flows down, it must
            // not lose or duplicate bytes.
            prop_assert!(
                (stats.links[l].bytes - link_expected).abs() < 1.0,
                "link {l}: carried {} expected {}",
                stats.links[l].bytes,
                link_expected,
            );
        }
    }

    /// Flaps pause flows but every byte still lands once the link
    /// returns; the run terminates.
    #[test]
    fn flapped_flows_complete_and_conserve_bytes(
        flows in arb_flows(),
        flap_link in 0usize..12,
        down_for in 0.001f64..0.1,
    ) {
        let topo = topo();
        let eng = Engine::new(topo.clone());
        let plan = FaultPlan::empty().with(
            0.0005,
            LinkId((flap_link % topo.link_count()) as u32),
            FaultKind::Flap { duration: down_for },
        );
        mpx_sim::FaultInjector::install(&eng, &plan);
        let gpus = topo.gpus();
        let mut expected = vec![0.0f64; topo.link_count()];
        for f in &flows {
            let link = topo.link_between(gpus[f.src], gpus[f.dst]).unwrap().id;
            expected[link.index()] += f.bytes as f64;
            eng.start_flow(FlowSpec::new(vec![link], f.bytes), OnComplete::Nothing);
        }
        eng.run_until_idle();
        let stats = eng.stats();
        prop_assert_eq!(stats.links_down, 0, "flap must have been restored");
        for (l, e) in expected.iter().enumerate() {
            prop_assert!(
                (stats.links[l].bytes - e).abs() < 1.0,
                "link {l}: carried {} expected {e}",
                stats.links[l].bytes,
            );
        }
    }
}
