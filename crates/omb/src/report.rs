//! Result records shared by the benchmark harness and the figure
//! binaries.

use serde::{Deserialize, Serialize};

/// One measured (or predicted) point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Message size in bytes.
    pub bytes: usize,
    /// The metric: bandwidth in bytes/s for BW/BIBW figures, seconds for
    /// latency figures, dimensionless for speedup figures.
    pub value: f64,
}

/// A labeled sweep (one line of a paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (`Direct Path`, `Dynamic`, `Static`, `Predicted`...).
    pub label: String,
    /// Points in ascending message-size order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, bytes: usize, value: f64) {
        self.points.push(SeriesPoint { bytes, value });
    }

    /// The value at an exact message size, if present.
    pub fn at(&self, bytes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.bytes == bytes)
            .map(|p| p.value)
    }
}

/// The OMB-style message-size ladder: powers of two from `min` to `max`
/// inclusive.
pub fn size_ladder(min: usize, max: usize) -> Vec<usize> {
    assert!(min > 0 && min <= max, "invalid ladder [{min}, {max}]");
    let mut out = Vec::new();
    let mut n = min.next_power_of_two();
    if n != min {
        out.push(min);
    }
    while n <= max {
        out.push(n);
        n = match n.checked_mul(2) {
            Some(x) => x,
            None => break,
        };
    }
    out
}

/// Mean relative error between two series on their shared sizes,
/// restricted to sizes `>= floor` (the paper reports errors for messages
/// larger than 4 MB).
pub fn mean_relative_error(reference: &Series, other: &Series, floor: usize) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for p in &reference.points {
        if p.bytes < floor {
            continue;
        }
        if let Some(v) = other.at(p.bytes) {
            total += ((v - p.value) / p.value).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::units::MIB;

    #[test]
    fn ladder_is_powers_of_two() {
        let l = size_ladder(2 * MIB, 32 * MIB);
        assert_eq!(l, vec![2 * MIB, 4 * MIB, 8 * MIB, 16 * MIB, 32 * MIB]);
    }

    #[test]
    fn ladder_keeps_non_power_min() {
        let l = size_ladder(3, 16);
        assert_eq!(l, vec![3, 4, 8, 16]);
    }

    #[test]
    #[should_panic(expected = "invalid ladder")]
    fn ladder_rejects_zero_min() {
        size_ladder(0, 8);
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("x");
        s.push(4, 10.0);
        s.push(8, 20.0);
        assert_eq!(s.at(8), Some(20.0));
        assert_eq!(s.at(5), None);
    }

    #[test]
    fn relative_error_respects_floor() {
        let mut a = Series::new("ref");
        let mut b = Series::new("other");
        for (n, va, vb) in [(1, 10.0, 20.0), (4, 10.0, 11.0), (8, 10.0, 9.0)] {
            a.push(n, va);
            b.push(n, vb);
        }
        // Floor at 4 skips the wildly-off n=1 point: mean(10%, 10%) = 10%.
        let err = mean_relative_error(&a, &b, 4);
        assert!((err - 0.10).abs() < 1e-12);
    }

    #[test]
    fn relative_error_empty_is_zero() {
        let a = Series::new("a");
        let b = Series::new("b");
        assert_eq!(mean_relative_error(&a, &b, 0), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Series::new("dyn");
        s.push(1024, 5e9);
        let json = serde_json::to_string(&s).unwrap();
        let back: Series = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
