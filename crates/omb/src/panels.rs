//! Figure-panel runners: produce exactly the series the paper's
//! evaluation figures plot.
//!
//! * [`p2p_panel`] — one panel of Figure 5 (BW) or Figure 6 (BIBW): the
//!   `Direct Path` baseline, the exhaustively-tuned `Static`
//!   distribution, the model-driven `Dynamic` distribution, and the
//!   model's `Predicted` bandwidth, swept over message sizes.
//! * [`collective_panel`] — one panel of Figure 7: `Static` and
//!   `Dynamic` latency speedups of MPI_Alltoall / MPI_Allreduce over the
//!   single-path baseline.
//! * [`degraded_fabric_panel`] — beyond the paper: achieved bandwidth of
//!   a resilient transfer when the direct link degrades mid-run, with
//!   and without recalibrating the model against the degraded fabric.

use crate::bw::{osu_bibw_on, osu_bw_on, P2pConfig};
use crate::collective_bench::{AllreduceAlgo, AlltoallAlgo, CollectiveConfig};
use crate::report::Series;
use mpx_gpu::GpuRuntime;
use mpx_mpi::World;
use mpx_sim::{Engine, FaultInjector, FaultKind, FaultPlan, SimTime};
use mpx_topo::path::PathSelection;
use mpx_topo::units::Bandwidth;
use mpx_topo::Topology;
use mpx_ucx::{RecoveryConfig, TransferError, TuningMode, UcxConfig, UcxContext};
use std::sync::Arc;

/// Unidirectional or bidirectional P2P panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P2pKind {
    /// OMB `osu_bw`.
    Bw,
    /// OMB `osu_bibw`.
    Bibw,
}

/// Which collective a Figure-7 panel measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// MPI_Alltoall (Bruck).
    Alltoall,
    /// MPI_Allreduce (K-nomial scatter-reduce + allgather).
    Allreduce,
}

fn ucx(mode: TuningMode, sel: PathSelection) -> UcxConfig {
    UcxConfig {
        mode,
        selection: sel,
        ..UcxConfig::default()
    }
}

/// Runs one P2P panel. Returns the four series in the paper's legend
/// order: `Direct Path`, `Static`, `Dynamic`, `Predicted`.
pub fn p2p_panel(
    topo: &Arc<Topology>,
    kind: P2pKind,
    sel: PathSelection,
    window: usize,
    sizes: &[usize],
    static_grid: u32,
) -> Vec<Series> {
    let cfg = P2pConfig::with_window(window);
    let measure = |world: &World, n: usize| match kind {
        P2pKind::Bw => osu_bw_on(world, n, cfg),
        P2pKind::Bibw => osu_bibw_on(world, n, cfg),
    };

    let mut direct = Series::new("Direct Path");
    let mut stat = Series::new("Static");
    let mut dynamic = Series::new("Dynamic");
    let mut predicted = Series::new("Predicted");

    // Direct baseline.
    let w_direct = World::new(topo.clone(), ucx(TuningMode::SinglePath, sel));
    for &n in sizes {
        direct.push(n, measure(&w_direct, n));
    }

    // Static: exhaustively tune each size, then measure from the table.
    let mut static_cfg = ucx(TuningMode::Static, sel);
    static_cfg.static_grid = static_grid;
    let w_static = World::new(topo.clone(), static_cfg);
    let gpus = topo.gpus();
    for &n in sizes {
        w_static
            .context()
            .tune_static(gpus[0], gpus[1], n)
            .expect("static tuning");
        stat.push(n, measure(&w_static, n));
    }

    // Dynamic: model-driven at runtime.
    let w_dynamic = World::new(topo.clone(), ucx(TuningMode::Dynamic, sel));
    for &n in sizes {
        dynamic.push(n, measure(&w_dynamic, n));
    }

    // Predicted: the model's *windowed* bandwidth (fixed costs amortize
    // over the window, Observation 2), ×2 for BIBW — the model is
    // direction-agnostic, which is exactly why the paper sees larger
    // BIBW errors under host-side contention.
    let planner = w_dynamic.context().planner();
    for &n in sizes {
        let plan = planner.plan(gpus[0], gpus[1], n, sel).expect("plan");
        let factor = match kind {
            P2pKind::Bw => 1.0,
            P2pKind::Bibw => 2.0,
        };
        predicted.push(n, plan.predicted_windowed_bandwidth(window) * factor);
    }

    vec![direct, stat, dynamic, predicted]
}

/// Runs the compiled-graph replay panel: windowed OMB bandwidth of the
/// interpreted chunk pipeline vs the capture/replay fast path, swept
/// over message sizes. Both series run the same model-driven `Dynamic`
/// tuning; the only difference is `UcxConfig::graph_replay`, so the gap
/// is purely per-PUT issue cost (chunk launches, rendezvous handshakes,
/// staging-ring setup) that replay amortizes into one capture. That
/// fixed cost is a constant per message, so the gap is widest at small
/// `n` and closes as transfer time swamps launch time — the window-16
/// companion to the paper's Observation 2 on fixed-cost amortization.
///
/// Returns `[Interpreted, Replayed]`. The warmup iteration of the OMB
/// protocol absorbs the one-time graph captures, exactly as it absorbs
/// IPC handle opens, so the timed window measures steady-state replay.
pub fn replay_panel(
    topo: &Arc<Topology>,
    sel: PathSelection,
    window: usize,
    sizes: &[usize],
) -> Vec<Series> {
    let cfg = P2pConfig::with_window(window);
    [("Interpreted", false), ("Replayed", true)]
        .into_iter()
        .map(|(label, replay)| {
            let ucx_cfg = UcxConfig {
                graph_replay: replay,
                ..ucx(TuningMode::Dynamic, sel)
            };
            let world = World::new(topo.clone(), ucx_cfg);
            let mut series = Series::new(label);
            for &n in sizes {
                series.push(n, osu_bw_on(&world, n, cfg));
            }
            series
        })
        .collect()
}

/// Runs one collective panel: latency **speedups** of `Static` and
/// `Dynamic` over the single-path baseline, per per-rank message size.
pub fn collective_panel(
    topo: &Arc<Topology>,
    kind: CollectiveKind,
    sel: PathSelection,
    sizes: &[usize],
    coll: CollectiveConfig,
) -> Vec<Series> {
    let gpus = topo.gpus();
    let measure = |mode: TuningMode, n: usize, tuned_ref: usize| {
        let cfg = ucx(mode, sel);
        if mode == TuningMode::Static {
            // Fixed share policy tuned once at the reference size, as the
            // offline-tuned engine of [35] would be deployed.
            let world = World::new(topo.clone(), cfg);
            world
                .context()
                .tune_static_shares(gpus[0], gpus[1], tuned_ref)
                .expect("static tuning");
            run_collective(&world, kind, n, coll)
        } else {
            let world = World::new(topo.clone(), cfg);
            run_collective(&world, kind, n, coll)
        }
    };

    let tuned_ref = *sizes.last().expect("non-empty sizes");
    let mut stat = Series::new("Static");
    let mut dynamic = Series::new("Dynamic");
    for &n in sizes {
        let base = measure(TuningMode::SinglePath, n, tuned_ref);
        let s = measure(TuningMode::Static, n, tuned_ref);
        let d = measure(TuningMode::Dynamic, n, tuned_ref);
        stat.push(n, base / s);
        dynamic.push(n, base / d);
    }
    vec![stat, dynamic]
}

/// One resilient transfer of `n` bytes GPU 0 → GPU 1 on a fresh fabric.
/// `degrade` scales the direct link's bandwidth via an injected fault at
/// t = 0; `recalibrate` lets the fault land *before* planning, so the
/// model probes the degraded fabric instead of planning from stale
/// healthy-fabric parameters.
fn run_degraded(
    topo: &Arc<Topology>,
    sel: PathSelection,
    n: usize,
    degrade: Option<f64>,
    recalibrate: bool,
) -> Bandwidth {
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(
        rt,
        UcxConfig {
            selection: sel,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let link = topo.link_between(gpus[0], gpus[1]).expect("direct link").id;
    if let Some(factor) = degrade {
        let plan = FaultPlan::empty().with(0.0, link, FaultKind::Degrade { factor });
        FaultInjector::install(ctx.runtime().engine(), &plan);
        if recalibrate {
            // Fire the fault now (callback mode, before any thread
            // registers); the first plan then probes degraded capacities.
            ctx.runtime().engine().run_until(SimTime::from_secs(1e-9));
        }
    }
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    let thread = ctx.runtime().engine().register_thread("degraded-driver");
    let ctx2 = ctx.clone();
    let worker = std::thread::spawn(move || {
        let t0 = thread.now();
        ctx2.put_resilient(&thread, &src, &dst, n, &RecoveryConfig::default())
            .expect("resilient put");
        n as f64 / thread.now().secs_since(t0)
    });
    worker.join().expect("driver thread")
}

/// The degraded-fabric panel: achieved bandwidth over message sizes for
/// three regimes — `Healthy` fabric, `Stale Plan` (direct link degraded
/// to `degrade_factor` at t = 0 but planned with healthy parameters),
/// and `Recalibrated` (same fault, parameters re-probed after it).
/// All three run through the resilient PUT path, so deadline/retry
/// machinery is exercised even when it never has to fire.
pub fn degraded_fabric_panel(
    topo: &Arc<Topology>,
    sel: PathSelection,
    sizes: &[usize],
    degrade_factor: f64,
) -> Vec<Series> {
    let mut healthy = Series::new("Healthy");
    let mut stale = Series::new("Stale Plan");
    let mut recal = Series::new("Recalibrated");
    for &n in sizes {
        healthy.push(n, run_degraded(topo, sel, n, None, false));
        stale.push(n, run_degraded(topo, sel, n, Some(degrade_factor), false));
        recal.push(n, run_degraded(topo, sel, n, Some(degrade_factor), true));
    }
    vec![healthy, stale, recal]
}

/// One plain (non-resilient) PUT of `n` bytes GPU 0 → GPU 1 on a fresh
/// fabric, with an optional fault plan installed before launch. Returns
/// the achieved bandwidth — or the transport's typed error when the
/// fabric strands the transfer, so benchmark drivers can report a
/// degraded-fabric run as a result instead of dying mid-suite (plain
/// `put` used to panic on a stuck pipeline).
pub fn put_once(
    topo: &Arc<Topology>,
    ucx_cfg: UcxConfig,
    n: usize,
    faults: Option<&FaultPlan>,
) -> Result<Bandwidth, TransferError> {
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(rt, ucx_cfg);
    if let Some(plan) = faults {
        FaultInjector::install(ctx.runtime().engine(), plan);
    }
    let gpus = topo.gpus();
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    let thread = ctx.runtime().engine().register_thread("put-once-driver");
    let worker = std::thread::spawn(move || {
        let t0 = thread.now();
        ctx.put(&thread, &src, &dst, n)?;
        Ok(n as f64 / thread.now().secs_since(t0))
    });
    worker.join().expect("driver thread")
}

fn run_collective(world: &World, kind: CollectiveKind, n: usize, coll: CollectiveConfig) -> f64 {
    // `n` is the per-rank message size (the paper's Fig. 7 x-axis).
    match kind {
        CollectiveKind::Allreduce => {
            // Align to 4·ranks for f32 block boundaries.
            let n = n - n % (4 * coll.ranks).max(4);
            osu_allreduce_on(
                world,
                n.max(4 * coll.ranks),
                AllreduceAlgo::Rabenseifner,
                coll,
            )
        }
        CollectiveKind::Alltoall => {
            // Per-rank total of `n` bytes spread over `ranks` blocks.
            let block = (n / coll.ranks).max(4);
            osu_alltoall_on(world, block, AlltoallAlgo::Bruck, coll)
        }
    }
}

/// Partition-scale panel (beyond the paper): simulated-engine event
/// throughput (events/sec of virtual-event processing, measured in wall
/// time) of the serial engine vs the component-partitioned parallel
/// engine ([`mpx_sim::Scenario`]) at `workers` workers, swept over total
/// flow count on a `nodes`-node disconnected cluster
/// ([`presets::cluster`]). Every cell first proves the two modes
/// bit-identical ([`mpx_sim::equivalence_diff`]) — a panel that plots
/// diverging engines would be meaningless — then reports both rates.
///
/// Returns `[Serial, Parallel (W workers)]`; the x-axis carries the flow
/// count (not bytes, unlike the paper panels).
pub fn partition_scale_panel(nodes: usize, workers: usize, flow_counts: &[usize]) -> Vec<Series> {
    use mpx_sim::{equivalence_diff, FlowSpec, Scenario};
    use mpx_topo::{presets, LinkId};
    const NODE_LINKS: usize = 21; // links per 4-GPU cluster node
    let topo = Arc::new(presets::cluster(nodes, 4));
    let mut serial = Series::new("Serial");
    let mut parallel = Series::new(format!("Parallel ({workers} workers)"));
    for &flows in flow_counts {
        let mut sc = Scenario::new(topo.clone()).with_trace(false);
        for k in 0..flows {
            let node = k % nodes;
            let off = (k / nodes) % 12; // GPU-pair link offsets
            let wave = k / (nodes * 12 * 16);
            let route = vec![LinkId((node * NODE_LINKS + off) as u32)];
            sc = sc.flow_at(
                wave as f64 * 100e-6,
                FlowSpec::new(route, (256 << 10) + (k % 64) * 4096),
            );
        }
        let equiv = sc.clone().with_trace(true);
        assert_eq!(
            equivalence_diff(&equiv.run_serial(), &equiv.run_parallel(workers)),
            None,
            "partition panel cell diverged at {flows} flows"
        );
        let t0 = std::time::Instant::now();
        let s = sc.run_serial();
        let serial_secs = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let p = sc.run_parallel(workers);
        let par_secs = t0.elapsed().as_secs_f64();
        assert_eq!(s.stats.events_processed, p.stats.events_processed);
        serial.push(flows, s.stats.events_processed as f64 / serial_secs);
        parallel.push(flows, p.stats.events_processed as f64 / par_secs);
    }
    vec![serial, parallel]
}

/// [`osu_allreduce`](crate::collective_bench::osu_allreduce) on an
/// existing world.
pub fn osu_allreduce_on(
    world: &World,
    n: usize,
    algo: AllreduceAlgo,
    cfg: CollectiveConfig,
) -> f64 {
    crate::collective_bench::allreduce_on(world, n, algo, cfg)
}

/// [`osu_alltoall`](crate::collective_bench::osu_alltoall) on an existing
/// world.
pub fn osu_alltoall_on(world: &World, n: usize, algo: AlltoallAlgo, cfg: CollectiveConfig) -> f64 {
    crate::collective_bench::alltoall_on(world, n, algo, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    #[test]
    fn p2p_panel_has_paper_series_shape() {
        let topo = Arc::new(presets::beluga());
        let sizes = [4 * MIB, 32 * MIB];
        let panel = p2p_panel(&topo, P2pKind::Bw, PathSelection::TWO_GPUS, 1, &sizes, 4);
        assert_eq!(panel.len(), 4);
        assert_eq!(panel[0].label, "Direct Path");
        assert_eq!(panel[3].label, "Predicted");
        for s in &panel {
            assert_eq!(s.points.len(), sizes.len(), "{}", s.label);
        }
        // Ordering at the large size: dynamic > direct; predicted within
        // a sane band of dynamic.
        let n = 32 * MIB;
        let direct = panel[0].at(n).unwrap();
        let dynamic = panel[2].at(n).unwrap();
        let predicted = panel[3].at(n).unwrap();
        assert!(dynamic > 1.5 * direct);
        assert!((predicted - dynamic).abs() / dynamic < 0.15);
    }

    #[test]
    fn replay_panel_closes_launch_gap_at_small_n() {
        let topo = Arc::new(presets::beluga());
        let sizes = [16 * 1024, 64 * 1024, MIB, 32 * MIB];
        let panel = replay_panel(&topo, PathSelection::THREE_GPUS, 16, &sizes);
        assert_eq!(panel.len(), 2);
        assert_eq!(panel[0].label, "Interpreted");
        assert_eq!(panel[1].label, "Replayed");
        for s in &panel {
            assert_eq!(s.points.len(), sizes.len(), "{}", s.label);
            for p in &s.points {
                assert!(p.value > 0.0, "{} at {}", s.label, p.bytes);
            }
        }
        let gain = |n: usize| panel[1].at(n).unwrap() / panel[0].at(n).unwrap();
        // Replay pays off most where per-message launch overhead
        // dominates (gap widest at the smallest size), shrinks
        // monotonically up the sweep, and never regresses: the two
        // pipelines converge once transfer time swamps launch time.
        assert!(
            gain(16 * 1024) > 1.3,
            "replay gain at 16 KiB must be large: {:.3}x",
            gain(16 * 1024)
        );
        for w in sizes.windows(2) {
            assert!(
                gain(w[0]) > gain(w[1]) - 0.005,
                "gap must close as n grows: {:.3}x at {} B vs {:.3}x at {} B",
                gain(w[0]),
                w[0],
                gain(w[1]),
                w[1]
            );
        }
        for &n in &sizes {
            assert!(
                gain(n) > 0.99,
                "replay must never regress: {:.3}x at {n} B",
                gain(n)
            );
        }
    }

    #[test]
    fn degraded_panel_orders_regimes() {
        let topo = Arc::new(presets::beluga());
        let sizes = [32 * MIB];
        let panel = degraded_fabric_panel(&topo, PathSelection::THREE_GPUS, &sizes, 0.35);
        assert_eq!(panel.len(), 3);
        let healthy = panel[0].at(32 * MIB).unwrap();
        let stale = panel[1].at(32 * MIB).unwrap();
        let recal = panel[2].at(32 * MIB).unwrap();
        assert!(
            healthy > stale,
            "healthy {healthy} must beat stale-plan degraded {stale}"
        );
        assert!(
            recal >= 0.98 * stale,
            "recalibrated {recal} must not trail stale plan {stale}"
        );
        assert!(recal < healthy, "degraded fabric cannot reach healthy bw");
    }

    #[test]
    fn put_once_measures_a_healthy_fabric() {
        let topo = Arc::new(presets::beluga());
        let bw = put_once(&topo, UcxConfig::default(), 32 * MIB, None)
            .expect("healthy fabric must not strand a put");
        assert!(bw > 0.0);
    }

    /// A mid-transfer kill with no surviving path surfaces as the typed
    /// stuck error, naming the stranded bytes — not a panic.
    #[test]
    fn put_once_surfaces_a_stuck_fabric_as_an_error() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let link = topo.link_between(gpus[0], gpus[1]).expect("direct").id;
        let cfg = UcxConfig {
            selection: PathSelection::DIRECT_ONLY,
            mode: TuningMode::SinglePath,
            ..UcxConfig::default()
        };
        // Kill well inside any plausible transfer time of 32 MiB over a
        // single NVLink, so the pipeline is stranded mid-flight.
        let faults = FaultPlan::empty().with(2e-5, link, FaultKind::Kill);
        let err = put_once(&topo, cfg, 32 * MIB, Some(&faults))
            .expect_err("severed direct-only fabric must strand the put");
        match err {
            TransferError::Stuck { bytes, elapsed } => {
                assert!(bytes > 0, "stuck error must name the stranded bytes");
                assert!(elapsed > 0.0);
            }
            other => panic!("expected Stuck, got {other}"),
        }
    }

    #[test]
    fn collective_panel_shows_speedup() {
        let topo = Arc::new(presets::beluga());
        let sizes = [16 * MIB];
        let panel = collective_panel(
            &topo,
            CollectiveKind::Alltoall,
            PathSelection::THREE_GPUS,
            &sizes,
            CollectiveConfig {
                iterations: 2,
                warmup: 1,
                ranks: 4,
            },
        );
        assert_eq!(panel.len(), 2);
        let dynamic = panel[1].at(16 * MIB).unwrap();
        assert!(
            dynamic > 1.05 && dynamic < 2.0,
            "alltoall dynamic speedup {dynamic}"
        );
    }

    #[test]
    fn partition_scale_panel_has_pinned_shape() {
        let counts = [96, 192];
        let panel = partition_scale_panel(4, 8, &counts);
        assert_eq!(panel.len(), 2);
        assert_eq!(panel[0].label, "Serial");
        assert_eq!(panel[1].label, "Parallel (8 workers)");
        for s in &panel {
            assert_eq!(s.points.len(), counts.len(), "{}", s.label);
            for p in &s.points {
                assert!(p.value > 0.0, "{} at {} flows", s.label, p.bytes);
            }
        }
    }
}
