//! Multi-tenant benchmarks: two independent jobs (sub-communicators)
//! share one node — the governance question behind the paper's
//! Section-3 caveat that staged detours borrow *other tenants'* links.
//!
//! Tenant A runs its collective on GPUs {0, 1} while tenant B runs its
//! own on GPUs {2, 3}. With multi-path transport, A's staged paths
//! route through B's GPUs and vice versa: everyone's "spare" capacity is
//! someone else's direct link.
//!
//! On top of the closed-loop collective pair sits an **open-loop
//! generator** ([`run_open_loop`]) driving the [`mpx_broker`] front-end:
//! each tenant is a Poisson arrival process with heavy-tailed (Pareto)
//! request sizes, submitting without waiting for completions — the
//! arrival rate never adapts to service, which is what makes saturation
//! and shedding observable at all. `bench_broker` builds its load
//! matrix out of these.

use mpx_broker::{Broker, Outcome};
use mpx_gpu::ReduceOp;
use mpx_mpi::{SubComm, World};
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, Topology};
use mpx_ucx::UcxConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Result of a two-tenant run.
#[derive(Debug, Clone, Copy)]
pub struct TenantResult {
    /// Tenant A's mean per-iteration latency (seconds).
    pub tenant_a: f64,
    /// Tenant B's mean per-iteration latency (seconds).
    pub tenant_b: f64,
}

impl TenantResult {
    /// Larger of the two tenants' latencies.
    pub fn worst(&self) -> f64 {
        self.tenant_a.max(self.tenant_b)
    }

    /// Fairness: max/min latency ratio (1.0 = perfectly fair).
    pub fn imbalance(&self) -> f64 {
        self.tenant_a.max(self.tenant_b) / self.tenant_a.min(self.tenant_b).max(1e-12)
    }
}

/// Runs two tenants' ring allreduces concurrently, `iterations` each,
/// with `active_b` controlling whether tenant B generates load at all
/// (idle-neighbour baseline).
pub fn two_tenant_allreduce(
    topo: &Arc<Topology>,
    ucx: UcxConfig,
    n: usize,
    iterations: usize,
    active_b: bool,
) -> TenantResult {
    assert!(topo.gpus().len() >= 4 && n.is_multiple_of(8) && iterations > 0);
    let world = World::new(topo.clone(), ucx);
    let times = world.run(4, move |r| {
        let colors = [0u32, 0, 1, 1];
        let sub = SubComm::split(&r, &colors);
        let tenant_b = r.rank >= 2;
        let buf = r.alloc(n);
        r.barrier();
        let t0 = r.now();
        if !tenant_b || active_b {
            for _ in 0..iterations {
                sub.allreduce_ring(&buf, n, ReduceOp::Sum);
            }
        }
        r.now().secs_since(t0) / iterations as f64
    });
    TenantResult {
        tenant_a: times[0].max(times[1]),
        tenant_b: times[2].max(times[3]),
    }
}

/// One tenant of the open-loop generator: a Poisson arrival process
/// with Pareto-distributed request sizes against one GPU pair.
#[derive(Debug, Clone)]
pub struct OpenLoopTenant {
    /// Broker tenant name — must be registered with the broker.
    pub name: String,
    /// Mean arrivals per virtual second.
    pub rate_hz: f64,
    /// Mean request size in bytes. Sizes are heavy-tailed (Pareto,
    /// shape 1.5) around this mean, floored at 4 KiB and capped at 8×
    /// the mean, 4-byte aligned.
    pub mean_bytes: usize,
    /// Explicit per-request deadline budget in virtual seconds (`None`
    /// uses the broker's configured admission policy).
    pub deadline: Option<Secs>,
}

/// Shape parameter of the Pareto size distribution: infinite variance,
/// finite mean — the classic heavy tail.
const PARETO_SHAPE: f64 = 1.5;

/// What one open-loop tenant experienced over the run.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopReport {
    /// Tenant name.
    pub name: String,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted by the broker.
    pub admitted: u64,
    /// Requests rejected by the broker, any
    /// [`mpx_broker::Rejected`] reason.
    pub shed: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Admitted requests the broker abandoned.
    pub failed: u64,
    /// Goodput numerator: bytes of completed requests.
    pub completed_bytes: u64,
    /// Submit-to-completion sojourn of each completed request, in
    /// virtual seconds, in completion order.
    pub latencies: Vec<f64>,
}

impl OpenLoopReport {
    /// The `q`-quantile (0..=1) of completion sojourns, or `None` when
    /// nothing completed.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Fraction of submissions shed.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }
}

/// Next Poisson inter-arrival gap for a process of `rate_hz`.
fn exp_gap(rng: &mut StdRng, rate_hz: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate_hz
}

/// A Pareto(shape 1.5) request size with the given mean, floored at
/// 4 KiB, capped at 8× the mean, 4-byte aligned.
fn pareto_bytes(rng: &mut StdRng, mean: usize) -> usize {
    let xm = mean as f64 * (PARETO_SHAPE - 1.0) / PARETO_SHAPE;
    let u: f64 = rng.gen_range(0.0..1.0);
    let raw = xm / (1.0 - u).powf(1.0 / PARETO_SHAPE);
    let capped = raw.min(8.0 * mean as f64).max(4096.0);
    (capped as usize) & !3
}

/// Drives `tenants` as concurrent open-loop arrival processes against
/// `broker` on GPU pair `(src, dst)` for `horizon` virtual seconds,
/// then waits out every outstanding ticket. Registers one scheduler
/// thread and one generator thread per tenant on the broker's engine —
/// the caller must not hold other registered sim threads across this
/// call. Returns one report per tenant, in input order.
pub fn run_open_loop(
    broker: &Arc<Broker>,
    src: DeviceId,
    dst: DeviceId,
    tenants: &[OpenLoopTenant],
    horizon: Secs,
    seed: u64,
) -> Vec<OpenLoopReport> {
    assert!(!tenants.is_empty() && horizon > 0.0);
    let engine = broker.context().runtime().engine().clone();
    broker.set_producers(tenants.len());
    // Quorum rule: register every actor before any of them can block.
    let sched_thread = engine.register_thread("broker-sched");
    let gen_threads: Vec<_> = tenants
        .iter()
        .map(|t| engine.register_thread(format!("gen-{}", t.name)))
        .collect();

    let mut reports = Vec::new();
    std::thread::scope(|s| {
        {
            let broker = broker.clone();
            s.spawn(move || broker.run(sched_thread));
        }
        let handles: Vec<_> = tenants
            .iter()
            .zip(gen_threads)
            .enumerate()
            .map(|(i, (spec, thread))| {
                let broker = broker.clone();
                let spec = spec.clone();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37_79b9 * (i as u64 + 1)));
                    let mut report = OpenLoopReport {
                        name: spec.name.clone(),
                        ..OpenLoopReport::default()
                    };
                    let mut tickets = Vec::new();
                    let t0 = thread.now();
                    loop {
                        thread.sleep(exp_gap(&mut rng, spec.rate_hz));
                        if thread.now().secs_since(t0) >= horizon {
                            break;
                        }
                        let n = pareto_bytes(&mut rng, spec.mean_bytes);
                        report.submitted += 1;
                        match broker.submit_with_deadline(&spec.name, src, dst, n, spec.deadline) {
                            Ok(ticket) => {
                                report.admitted += 1;
                                tickets.push((ticket, n));
                            }
                            Err(_) => report.shed += 1,
                        }
                    }
                    // Open loop is over; let the broker drain and
                    // collect every outcome.
                    broker.producer_done();
                    for (ticket, n) in tickets {
                        match ticket.wait(&thread) {
                            Outcome::Completed { latency, .. } => {
                                report.completed += 1;
                                report.completed_bytes += n as u64;
                                report.latencies.push(latency);
                            }
                            Outcome::Failed { .. } => report.failed += 1,
                        }
                    }
                    report
                })
            })
            .collect();
        for h in handles {
            reports.push(h.join().expect("generator thread panicked"));
        }
    });
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_broker::{BrokerConfig, TenantSpec};
    use mpx_gpu::GpuRuntime;
    use mpx_sim::Engine;
    use mpx_topo::path::PathSelection;
    use mpx_topo::presets;
    use mpx_ucx::{TuningMode, UcxContext};

    fn cfg(mode: TuningMode) -> UcxConfig {
        UcxConfig {
            mode,
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        }
    }

    const N: usize = 16 << 20;

    #[test]
    fn single_path_tenants_are_perfectly_isolated() {
        // Each tenant's ring uses only its own direct links: a busy
        // neighbour costs nothing.
        let topo = Arc::new(presets::beluga());
        let alone = two_tenant_allreduce(&topo, cfg(TuningMode::SinglePath), N, 2, false).tenant_a;
        let shared = two_tenant_allreduce(&topo, cfg(TuningMode::SinglePath), N, 2, true).tenant_a;
        let slowdown = shared / alone;
        assert!(
            slowdown < 1.02,
            "single-path tenant slowed {slowdown}x by its neighbour"
        );
    }

    #[test]
    fn multipath_tenants_interfere_but_stay_ahead() {
        // Multi-path detours cross tenant boundaries: a busy neighbour
        // now costs something — the noisy-neighbour effect — but each
        // tenant still beats its own single-path configuration.
        let topo = Arc::new(presets::beluga());
        let mp_alone = two_tenant_allreduce(&topo, cfg(TuningMode::Dynamic), N, 2, false).tenant_a;
        let mp_shared = two_tenant_allreduce(&topo, cfg(TuningMode::Dynamic), N, 2, true).tenant_a;
        let sp_shared =
            two_tenant_allreduce(&topo, cfg(TuningMode::SinglePath), N, 2, true).tenant_a;
        let noisy_neighbour = mp_shared / mp_alone;
        assert!(
            noisy_neighbour > 1.02,
            "multi-path tenants should interfere: {noisy_neighbour}x"
        );
        assert!(
            noisy_neighbour < 1.6,
            "interference must stay bounded: {noisy_neighbour}x"
        );
        assert!(
            mp_shared < sp_shared,
            "even contended, multi-path {mp_shared} beats single-path {sp_shared}"
        );
    }

    #[test]
    fn concurrent_tenants_are_fair() {
        let topo = Arc::new(presets::beluga());
        let r = two_tenant_allreduce(&topo, cfg(TuningMode::Dynamic), N, 2, true);
        assert!(
            r.imbalance() < 1.2,
            "symmetric tenants should see symmetric service: {r:?}"
        );
    }

    #[test]
    fn open_loop_generator_saturates_and_drains_cleanly() {
        let rt = GpuRuntime::new(Engine::new(Arc::new(presets::beluga())));
        let ctx = UcxContext::new(rt, UcxConfig::default());
        let gpus = ctx.runtime().engine().topology().gpus();
        let broker = Broker::new(
            ctx,
            BrokerConfig::default(),
            vec![TenantSpec::new("a", 2.0), TenantSpec::new("b", 1.0)],
        );
        // Pitch the combined arrival rate at 2× the pair's modeled
        // capacity for the mean size: the broker must shed, not queue
        // without bound, and the drain must balance the books.
        let mean = 4 << 20;
        let plan = broker.context().plan_for(gpus[0], gpus[1], mean).unwrap();
        let cap_hz = plan.predicted_bandwidth / mean as f64;
        let specs: Vec<OpenLoopTenant> = ["a", "b"]
            .iter()
            .map(|name| OpenLoopTenant {
                name: (*name).to_string(),
                rate_hz: cap_hz,
                mean_bytes: mean,
                deadline: None,
            })
            .collect();
        let reports = run_open_loop(&broker, gpus[0], gpus[1], &specs, 0.02, 42);
        let s = broker.stats();
        assert!(s.accounting_ok(), "submission ledger unbalanced: {s:?}");
        assert!(s.drained_ok(), "tickets left unresolved: {s:?}");
        assert!(reports.iter().all(|r| r.submitted > 0), "{reports:?}");
        assert!(
            reports.iter().map(|r| r.completed).sum::<u64>() > 0,
            "nothing completed: {reports:?}"
        );
        assert!(
            s.shed_total() > 0,
            "2x-capacity open-loop load must shed: {s:?}"
        );
        for r in &reports {
            assert_eq!(r.admitted, r.completed + r.failed, "{r:?}");
        }
    }
}
