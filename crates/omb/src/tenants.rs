//! Multi-tenant benchmarks: two independent jobs (sub-communicators)
//! share one node — the governance question behind the paper's
//! Section-3 caveat that staged detours borrow *other tenants'* links.
//!
//! Tenant A runs its collective on GPUs {0, 1} while tenant B runs its
//! own on GPUs {2, 3}. With multi-path transport, A's staged paths
//! route through B's GPUs and vice versa: everyone's "spare" capacity is
//! someone else's direct link.

use mpx_gpu::ReduceOp;
use mpx_mpi::{SubComm, World};
use mpx_topo::Topology;
use mpx_ucx::UcxConfig;
use std::sync::Arc;

/// Result of a two-tenant run.
#[derive(Debug, Clone, Copy)]
pub struct TenantResult {
    /// Tenant A's mean per-iteration latency (seconds).
    pub tenant_a: f64,
    /// Tenant B's mean per-iteration latency (seconds).
    pub tenant_b: f64,
}

impl TenantResult {
    /// Larger of the two tenants' latencies.
    pub fn worst(&self) -> f64 {
        self.tenant_a.max(self.tenant_b)
    }

    /// Fairness: max/min latency ratio (1.0 = perfectly fair).
    pub fn imbalance(&self) -> f64 {
        self.tenant_a.max(self.tenant_b) / self.tenant_a.min(self.tenant_b).max(1e-12)
    }
}

/// Runs two tenants' ring allreduces concurrently, `iterations` each,
/// with `active_b` controlling whether tenant B generates load at all
/// (idle-neighbour baseline).
pub fn two_tenant_allreduce(
    topo: &Arc<Topology>,
    ucx: UcxConfig,
    n: usize,
    iterations: usize,
    active_b: bool,
) -> TenantResult {
    assert!(topo.gpus().len() >= 4 && n.is_multiple_of(8) && iterations > 0);
    let world = World::new(topo.clone(), ucx);
    let times = world.run(4, move |r| {
        let colors = [0u32, 0, 1, 1];
        let sub = SubComm::split(&r, &colors);
        let tenant_b = r.rank >= 2;
        let buf = r.alloc(n);
        r.barrier();
        let t0 = r.now();
        if !tenant_b || active_b {
            for _ in 0..iterations {
                sub.allreduce_ring(&buf, n, ReduceOp::Sum);
            }
        }
        r.now().secs_since(t0) / iterations as f64
    });
    TenantResult {
        tenant_a: times[0].max(times[1]),
        tenant_b: times[2].max(times[3]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::path::PathSelection;
    use mpx_topo::presets;
    use mpx_ucx::TuningMode;

    fn cfg(mode: TuningMode) -> UcxConfig {
        UcxConfig {
            mode,
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        }
    }

    const N: usize = 16 << 20;

    #[test]
    fn single_path_tenants_are_perfectly_isolated() {
        // Each tenant's ring uses only its own direct links: a busy
        // neighbour costs nothing.
        let topo = Arc::new(presets::beluga());
        let alone = two_tenant_allreduce(&topo, cfg(TuningMode::SinglePath), N, 2, false).tenant_a;
        let shared = two_tenant_allreduce(&topo, cfg(TuningMode::SinglePath), N, 2, true).tenant_a;
        let slowdown = shared / alone;
        assert!(
            slowdown < 1.02,
            "single-path tenant slowed {slowdown}x by its neighbour"
        );
    }

    #[test]
    fn multipath_tenants_interfere_but_stay_ahead() {
        // Multi-path detours cross tenant boundaries: a busy neighbour
        // now costs something — the noisy-neighbour effect — but each
        // tenant still beats its own single-path configuration.
        let topo = Arc::new(presets::beluga());
        let mp_alone = two_tenant_allreduce(&topo, cfg(TuningMode::Dynamic), N, 2, false).tenant_a;
        let mp_shared = two_tenant_allreduce(&topo, cfg(TuningMode::Dynamic), N, 2, true).tenant_a;
        let sp_shared =
            two_tenant_allreduce(&topo, cfg(TuningMode::SinglePath), N, 2, true).tenant_a;
        let noisy_neighbour = mp_shared / mp_alone;
        assert!(
            noisy_neighbour > 1.02,
            "multi-path tenants should interfere: {noisy_neighbour}x"
        );
        assert!(
            noisy_neighbour < 1.6,
            "interference must stay bounded: {noisy_neighbour}x"
        );
        assert!(
            mp_shared < sp_shared,
            "even contended, multi-path {mp_shared} beats single-path {sp_shared}"
        );
    }

    #[test]
    fn concurrent_tenants_are_fair() {
        let topo = Arc::new(presets::beluga());
        let r = two_tenant_allreduce(&topo, cfg(TuningMode::Dynamic), N, 2, true);
        assert!(
            r.imbalance() < 1.2,
            "symmetric tenants should see symmetric service: {r:?}"
        );
    }
}
