//! # mpx-omb — OSU-micro-benchmark-style harness
//!
//! The measurement protocols of the paper's evaluation (Section 5): OMB
//! unidirectional/bidirectional windowed bandwidth, ping-pong latency,
//! and collective latency tests, plus the panel runners that produce the
//! exact series each figure plots.
//!
//! ```
//! use std::sync::Arc;
//! use mpx_omb::{osu_bw, P2pConfig};
//! use mpx_topo::presets;
//! use mpx_ucx::{TuningMode, UcxConfig};
//!
//! let topo = Arc::new(presets::beluga());
//! let single = osu_bw(
//!     &topo,
//!     UcxConfig { mode: TuningMode::SinglePath, ..UcxConfig::default() },
//!     16 << 20,
//!     P2pConfig::default(),
//! );
//! let multi = osu_bw(&topo, UcxConfig::default(), 16 << 20, P2pConfig::default());
//! assert!(multi > 1.5 * single);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bw;
pub mod collective_bench;
pub mod loaded;
pub mod panels;
pub mod pattern;
pub mod report;
pub mod tenants;

pub use bw::{osu_bibw, osu_bibw_on, osu_bw, osu_bw_on, osu_latency, osu_mbw_mr, P2pConfig};
pub use collective_bench::{
    allreduce_on, alltoall_on, bcast_on, osu_allgather, osu_allreduce, osu_alltoall, osu_bcast,
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, CollectiveConfig,
};
pub use loaded::{osu_bw_loaded, LoadedConfig};
pub use panels::{
    collective_panel, degraded_fabric_panel, p2p_panel, put_once, replay_panel, CollectiveKind,
    P2pKind,
};
pub use pattern::{ring_pairs, run_pattern, PatternPlanning, PatternResult};
pub use report::{mean_relative_error, size_ladder, Series, SeriesPoint};
pub use tenants::{
    run_open_loop, two_tenant_allreduce, OpenLoopReport, OpenLoopTenant, TenantResult,
};
