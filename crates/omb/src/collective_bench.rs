//! OSU-style collective latency tests: `osu_allreduce` and
//! `osu_alltoall` over all GPUs of the node (paper Section 5.3).

use mpx_gpu::ReduceOp;
use mpx_mpi::{
    allgather_recursive_doubling, allgather_ring, allreduce_rabenseifner, allreduce_ring,
    alltoall_bruck, alltoall_pairwise, bcast_binomial, World,
};
use mpx_topo::Topology;
use mpx_ucx::UcxConfig;
use std::sync::Arc;

/// Which allreduce algorithm to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Recursive K-nomial scatter-reduce + allgather (UCP's large-message
    /// choice; the paper's configuration).
    Rabenseifner,
    /// Ring (ablation baseline).
    Ring,
}

/// Which alltoall algorithm to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlltoallAlgo {
    /// Bruck (UCP's choice; the paper's configuration).
    Bruck,
    /// Pairwise exchange (ablation baseline).
    Pairwise,
}

/// Collective measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveConfig {
    /// Number of ranks (defaults to every GPU on the node).
    pub ranks: usize,
    /// Timed iterations.
    pub iterations: usize,
    /// Untimed warmup iterations.
    pub warmup: usize,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig {
            ranks: 4,
            iterations: 3,
            warmup: 1,
        }
    }
}

/// Mean MPI_Allreduce latency (seconds) for an `n`-byte per-rank buffer.
pub fn osu_allreduce(
    topo: &Arc<Topology>,
    ucx: UcxConfig,
    n: usize,
    algo: AllreduceAlgo,
    cfg: CollectiveConfig,
) -> f64 {
    allreduce_on(&World::new(topo.clone(), ucx), n, algo, cfg)
}

/// [`osu_allreduce`] on an existing world.
pub fn allreduce_on(world: &World, n: usize, algo: AllreduceAlgo, cfg: CollectiveConfig) -> f64 {
    assert!(n > 0 && cfg.iterations > 0);
    assert_eq!(n % (4 * cfg.ranks), 0, "n must be a multiple of 4*ranks");
    let results = world.run(cfg.ranks, move |r| {
        let buf = r.alloc(n);
        let mut t0 = r.now();
        for it in 0..cfg.warmup + cfg.iterations {
            if it == cfg.warmup {
                r.barrier();
                t0 = r.now();
            }
            match algo {
                AllreduceAlgo::Rabenseifner => allreduce_rabenseifner(&r, &buf, n, ReduceOp::Sum),
                AllreduceAlgo::Ring => allreduce_ring(&r, &buf, n, ReduceOp::Sum),
            }
        }
        r.now().secs_since(t0) / cfg.iterations as f64
    });
    results.into_iter().fold(0.0, f64::max)
}

/// Mean MPI_Alltoall latency (seconds). `n` is the per-destination block
/// size (each rank sends `n` bytes to every other rank, OSU convention).
pub fn osu_alltoall(
    topo: &Arc<Topology>,
    ucx: UcxConfig,
    n: usize,
    algo: AlltoallAlgo,
    cfg: CollectiveConfig,
) -> f64 {
    alltoall_on(&World::new(topo.clone(), ucx), n, algo, cfg)
}

/// [`osu_alltoall`] on an existing world.
pub fn alltoall_on(world: &World, n: usize, algo: AlltoallAlgo, cfg: CollectiveConfig) -> f64 {
    assert!(n > 0 && cfg.iterations > 0);
    let results = world.run(cfg.ranks, move |r| {
        let send = r.alloc(cfg.ranks * n);
        let recv = r.alloc(cfg.ranks * n);
        let mut t0 = r.now();
        for it in 0..cfg.warmup + cfg.iterations {
            if it == cfg.warmup {
                r.barrier();
                t0 = r.now();
            }
            match algo {
                AlltoallAlgo::Bruck => alltoall_bruck(&r, &send, &recv, n),
                AlltoallAlgo::Pairwise => alltoall_pairwise(&r, &send, &recv, n),
            }
        }
        r.now().secs_since(t0) / cfg.iterations as f64
    });
    results.into_iter().fold(0.0, f64::max)
}

/// Which allgather algorithm to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherAlgo {
    /// Recursive doubling (power-of-two worlds).
    RecursiveDoubling,
    /// Ring (any world size).
    Ring,
}

/// Mean MPI_Bcast latency (seconds) for an `n`-byte buffer from rank 0.
pub fn osu_bcast(topo: &Arc<Topology>, ucx: UcxConfig, n: usize, cfg: CollectiveConfig) -> f64 {
    bcast_on(&World::new(topo.clone(), ucx), n, cfg)
}

/// [`osu_bcast`] on an existing world.
pub fn bcast_on(world: &World, n: usize, cfg: CollectiveConfig) -> f64 {
    assert!(n > 0 && cfg.iterations > 0);
    let results = world.run(cfg.ranks, move |r| {
        let buf = r.alloc(n);
        let mut t0 = r.now();
        for it in 0..cfg.warmup + cfg.iterations {
            if it == cfg.warmup {
                r.barrier();
                t0 = r.now();
            }
            bcast_binomial(&r, &buf, n, 0);
        }
        r.now().secs_since(t0) / cfg.iterations as f64
    });
    results.into_iter().fold(0.0, f64::max)
}

/// Mean MPI_Allgather latency (seconds); `n` is the per-rank block size.
pub fn osu_allgather(
    topo: &Arc<Topology>,
    ucx: UcxConfig,
    n: usize,
    algo: AllgatherAlgo,
    cfg: CollectiveConfig,
) -> f64 {
    assert!(n > 0 && cfg.iterations > 0);
    let world = World::new(topo.clone(), ucx);
    let results = world.run(cfg.ranks, move |r| {
        let buf = r.alloc(cfg.ranks * n);
        let mut t0 = r.now();
        for it in 0..cfg.warmup + cfg.iterations {
            if it == cfg.warmup {
                r.barrier();
                t0 = r.now();
            }
            match algo {
                AllgatherAlgo::RecursiveDoubling => allgather_recursive_doubling(&r, &buf, n),
                AllgatherAlgo::Ring => allgather_ring(&r, &buf, n),
            }
        }
        r.now().secs_since(t0) / cfg.iterations as f64
    });
    results.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;
    use mpx_ucx::TuningMode;

    fn cfg(mode: TuningMode) -> UcxConfig {
        UcxConfig {
            mode,
            // Collectives exclude the host path (paper Section 5.3: host
            // staging degrades under bidirectional contention).
            selection: mpx_topo::PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        }
    }

    #[test]
    fn allreduce_latency_positive_and_scales() {
        let topo = Arc::new(presets::beluga());
        let small = osu_allreduce(
            &topo,
            cfg(TuningMode::SinglePath),
            4 * MIB,
            AllreduceAlgo::Rabenseifner,
            CollectiveConfig::default(),
        );
        let large = osu_allreduce(
            &topo,
            cfg(TuningMode::SinglePath),
            64 * MIB,
            AllreduceAlgo::Rabenseifner,
            CollectiveConfig::default(),
        );
        assert!(small > 0.0);
        assert!(large > 4.0 * small, "64M {large} vs 4M {small}");
    }

    #[test]
    fn multi_path_speeds_up_allreduce() {
        let topo = Arc::new(presets::beluga());
        let n = 64 * MIB;
        let single = osu_allreduce(
            &topo,
            cfg(TuningMode::SinglePath),
            n,
            AllreduceAlgo::Rabenseifner,
            CollectiveConfig::default(),
        );
        let multi = osu_allreduce(
            &topo,
            cfg(TuningMode::Dynamic),
            n,
            AllreduceAlgo::Rabenseifner,
            CollectiveConfig::default(),
        );
        let speedup = single / multi;
        assert!(
            (1.05..2.0).contains(&speedup),
            "allreduce speedup {speedup}"
        );
    }

    #[test]
    fn multi_path_speeds_up_alltoall_more_than_allreduce() {
        // Observation 3: Alltoall gains more because it has no compute.
        let topo = Arc::new(presets::beluga());
        let n = 16 * MIB;
        let coll = CollectiveConfig::default();
        let ar_single = osu_allreduce(
            &topo,
            cfg(TuningMode::SinglePath),
            4 * n,
            AllreduceAlgo::Rabenseifner,
            coll,
        );
        let ar_multi = osu_allreduce(
            &topo,
            cfg(TuningMode::Dynamic),
            4 * n,
            AllreduceAlgo::Rabenseifner,
            coll,
        );
        let a2a_single = osu_alltoall(
            &topo,
            cfg(TuningMode::SinglePath),
            n,
            AlltoallAlgo::Bruck,
            coll,
        );
        let a2a_multi = osu_alltoall(
            &topo,
            cfg(TuningMode::Dynamic),
            n,
            AlltoallAlgo::Bruck,
            coll,
        );
        let ar_speedup = ar_single / ar_multi;
        let a2a_speedup = a2a_single / a2a_multi;
        assert!(
            a2a_speedup > ar_speedup,
            "alltoall {a2a_speedup} should gain more than allreduce {ar_speedup}"
        );
    }

    #[test]
    fn bcast_multipath_speedup() {
        let topo = Arc::new(presets::beluga());
        let n = 64 * MIB;
        let coll = CollectiveConfig::default();
        let single = osu_bcast(&topo, cfg(TuningMode::SinglePath), n, coll);
        let multi = osu_bcast(&topo, cfg(TuningMode::Dynamic), n, coll);
        let speedup = single / multi;
        assert!(
            speedup > 1.2,
            "bcast speedup {speedup} (single {single}, multi {multi})"
        );
    }

    #[test]
    fn allgather_algorithms_scale_with_size() {
        let topo = Arc::new(presets::beluga());
        let coll = CollectiveConfig::default();
        let small = osu_allgather(
            &topo,
            cfg(TuningMode::SinglePath),
            MIB,
            AllgatherAlgo::RecursiveDoubling,
            coll,
        );
        let large = osu_allgather(
            &topo,
            cfg(TuningMode::SinglePath),
            16 * MIB,
            AllgatherAlgo::RecursiveDoubling,
            coll,
        );
        assert!(large > 4.0 * small, "16M {large} vs 1M {small}");
        let ring = osu_allgather(
            &topo,
            cfg(TuningMode::SinglePath),
            16 * MIB,
            AllgatherAlgo::Ring,
            coll,
        );
        assert!(ring > 0.0);
    }

    #[test]
    fn pairwise_and_bruck_both_complete() {
        let topo = Arc::new(presets::beluga());
        let n = 4 * MIB;
        let coll = CollectiveConfig::default();
        let bruck = osu_alltoall(
            &topo,
            cfg(TuningMode::Dynamic),
            n,
            AlltoallAlgo::Bruck,
            coll,
        );
        let pairwise = osu_alltoall(
            &topo,
            cfg(TuningMode::Dynamic),
            n,
            AlltoallAlgo::Pairwise,
            coll,
        );
        assert!(bruck > 0.0 && pairwise > 0.0);
    }
}
