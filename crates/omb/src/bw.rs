//! OSU-style point-to-point bandwidth tests: unidirectional (`osu_bw`)
//! and bidirectional (`osu_bibw`), with the window sizes the paper sweeps
//! (1 and 16).

use mpx_mpi::{waitall_deadline, Rank, Request, World};
use mpx_topo::units::Bandwidth;
use mpx_topo::Topology;
use mpx_ucx::UcxConfig;
use std::sync::Arc;

/// Virtual-time guard on every waitall: no intra-node iteration takes
/// anywhere near this long, so a rank stuck on a dead link aborts the
/// benchmark with a diagnostic instead of hanging the test run.
const WAIT_GUARD: f64 = 600.0;

fn waitall_guarded(r: &Rank, reqs: &[Request]) {
    let deadline = r.now().after(WAIT_GUARD);
    if let Err(e) = waitall_deadline(r.thread(), reqs, deadline) {
        panic!("rank {}: benchmark wait stuck ({e})", r.rank);
    }
}

/// Measurement protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P2pConfig {
    /// Outstanding messages per iteration (OMB's window size).
    pub window: usize,
    /// Timed iterations.
    pub iterations: usize,
    /// Untimed warmup iterations (also absorbs one-time costs: IPC handle
    /// opens, plan-cache misses).
    pub warmup: usize,
}

impl Default for P2pConfig {
    fn default() -> Self {
        P2pConfig {
            window: 1,
            iterations: 4,
            warmup: 1,
        }
    }
}

impl P2pConfig {
    /// The paper's two window settings.
    pub fn windows() -> [usize; 2] {
        [1, 16]
    }

    /// Config with the given window.
    pub fn with_window(window: usize) -> P2pConfig {
        P2pConfig {
            window,
            ..P2pConfig::default()
        }
    }
}

/// Unidirectional bandwidth (bytes/s) between GPU 0 and GPU 1 for
/// `n`-byte messages. Fresh simulation per call.
pub fn osu_bw(topo: &Arc<Topology>, ucx: UcxConfig, n: usize, cfg: P2pConfig) -> Bandwidth {
    osu_bw_on(&World::new(topo.clone(), ucx), n, cfg)
}

/// [`osu_bw`] on an existing world (reuses its virtual clock, plan cache
/// and — for static mode — its tuned table).
pub fn osu_bw_on(world: &World, n: usize, cfg: P2pConfig) -> Bandwidth {
    assert!(n > 0 && cfg.window > 0 && cfg.iterations > 0);
    let results = world.run(2, move |r| {
        let bufs: Vec<_> = (0..cfg.window).map(|_| r.alloc(n)).collect();
        let mut t0 = r.now();
        for it in 0..cfg.warmup + cfg.iterations {
            if it == cfg.warmup {
                r.barrier();
                t0 = r.now();
            }
            let reqs: Vec<_> = (0..cfg.window)
                .map(|k| {
                    let tag = (it * cfg.window + k) as u64;
                    if r.rank == 0 {
                        r.isend(&bufs[k], n, 1, tag)
                    } else {
                        r.irecv(&bufs[k], n, Some(0), Some(tag))
                    }
                })
                .collect();
            waitall_guarded(&r, &reqs);
        }
        let dt = r.now().secs_since(t0);
        (cfg.iterations * cfg.window * n) as f64 / dt
    });
    results[0]
}

/// Bidirectional bandwidth (bytes/s, both directions summed) between
/// GPU 0 and GPU 1.
pub fn osu_bibw(topo: &Arc<Topology>, ucx: UcxConfig, n: usize, cfg: P2pConfig) -> Bandwidth {
    osu_bibw_on(&World::new(topo.clone(), ucx), n, cfg)
}

/// [`osu_bibw`] on an existing world.
pub fn osu_bibw_on(world: &World, n: usize, cfg: P2pConfig) -> Bandwidth {
    assert!(n > 0 && cfg.window > 0 && cfg.iterations > 0);
    let results = world.run(2, move |r| {
        let peer = 1 - r.rank;
        let sbufs: Vec<_> = (0..cfg.window).map(|_| r.alloc(n)).collect();
        let rbufs: Vec<_> = (0..cfg.window).map(|_| r.alloc(n)).collect();
        let mut t0 = r.now();
        for it in 0..cfg.warmup + cfg.iterations {
            if it == cfg.warmup {
                r.barrier();
                t0 = r.now();
            }
            // Tag encodes (direction, iteration, slot).
            let dir = |sender: usize| (sender as u64) << 32;
            let mut reqs = Vec::with_capacity(2 * cfg.window);
            for (k, rbuf) in rbufs.iter().enumerate() {
                let idx = (it * cfg.window + k) as u64;
                reqs.push(r.irecv(rbuf, n, Some(peer), Some(dir(peer) | idx)));
            }
            for (k, sbuf) in sbufs.iter().enumerate() {
                let idx = (it * cfg.window + k) as u64;
                reqs.push(r.isend(sbuf, n, peer, dir(r.rank) | idx));
            }
            waitall_guarded(&r, &reqs);
        }
        let dt = r.now().secs_since(t0);
        (2 * cfg.iterations * cfg.window * n) as f64 / dt
    });
    results[0].max(results[1])
}

/// OMB `osu_mbw_mr`: aggregate multi-pair bandwidth (bytes/s) with
/// `pairs` sender/receiver pairs (rank `i` sends to rank `i + pairs`).
/// Also the message-rate test: divide by `n` for messages/s.
pub fn osu_mbw_mr(
    topo: &Arc<Topology>,
    ucx: UcxConfig,
    n: usize,
    pairs: usize,
    cfg: P2pConfig,
) -> Bandwidth {
    assert!(n > 0 && pairs > 0 && cfg.window > 0 && cfg.iterations > 0);
    let world = World::new(topo.clone(), ucx);
    let results = world.run(2 * pairs, move |r| {
        let sender = r.rank < pairs;
        let peer = if sender {
            r.rank + pairs
        } else {
            r.rank - pairs
        };
        let bufs: Vec<_> = (0..cfg.window).map(|_| r.alloc(n)).collect();
        let mut t0 = r.now();
        for it in 0..cfg.warmup + cfg.iterations {
            if it == cfg.warmup {
                r.barrier();
                t0 = r.now();
            }
            let reqs: Vec<_> = bufs
                .iter()
                .enumerate()
                .map(|(k, buf)| {
                    let tag = (it * cfg.window + k) as u64;
                    if sender {
                        r.isend(buf, n, peer, tag)
                    } else {
                        r.irecv(buf, n, Some(peer), Some(tag))
                    }
                })
                .collect();
            waitall_guarded(&r, &reqs);
        }
        r.now().secs_since(t0)
    });
    // Aggregate: all pairs move window*iters*n bytes in the max elapsed.
    let elapsed = results.into_iter().fold(0.0f64, f64::max);
    (pairs * cfg.iterations * cfg.window * n) as f64 / elapsed
}

/// Ping-pong latency (seconds, one-way) between GPU 0 and GPU 1.
pub fn osu_latency(topo: &Arc<Topology>, ucx: UcxConfig, n: usize, iterations: usize) -> f64 {
    assert!(n > 0 && iterations > 0);
    let world = World::new(topo.clone(), ucx);
    let results = world.run(2, move |r| {
        let buf = r.alloc(n);
        r.barrier();
        let t0 = r.now();
        for it in 0..iterations as u64 {
            if r.rank == 0 {
                r.send(&buf, n, 1, 2 * it);
                r.recv(&buf, n, Some(1), Some(2 * it + 1));
            } else {
                r.recv(&buf, n, Some(0), Some(2 * it));
                r.send(&buf, n, 0, 2 * it + 1);
            }
        }
        r.now().secs_since(t0) / (2.0 * iterations as f64)
    });
    results[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;
    use mpx_ucx::TuningMode;

    fn cfg(mode: TuningMode) -> UcxConfig {
        UcxConfig {
            mode,
            ..UcxConfig::default()
        }
    }

    #[test]
    fn single_path_bw_approaches_link_rate() {
        let topo = Arc::new(presets::beluga());
        let bw = osu_bw(
            &topo,
            cfg(TuningMode::SinglePath),
            64 * MIB,
            P2pConfig::default(),
        );
        assert!(bw > 0.9 * 48e9 && bw <= 48e9, "bw = {:.1} GB/s", bw / 1e9);
    }

    #[test]
    fn dynamic_bw_beats_single_path() {
        let topo = Arc::new(presets::beluga());
        let single = osu_bw(
            &topo,
            cfg(TuningMode::SinglePath),
            64 * MIB,
            P2pConfig::default(),
        );
        let multi = osu_bw(
            &topo,
            cfg(TuningMode::Dynamic),
            64 * MIB,
            P2pConfig::default(),
        );
        let speedup = multi / single;
        assert!(
            (2.0..3.6).contains(&speedup),
            "speedup {speedup} out of band"
        );
    }

    #[test]
    fn window_16_at_least_as_fast_as_window_1() {
        let topo = Arc::new(presets::beluga());
        let w1 = osu_bw(
            &topo,
            cfg(TuningMode::Dynamic),
            8 * MIB,
            P2pConfig::with_window(1),
        );
        let w16 = osu_bw(
            &topo,
            cfg(TuningMode::Dynamic),
            8 * MIB,
            P2pConfig::with_window(16),
        );
        assert!(
            w16 > 0.99 * w1,
            "w16 {:.1} vs w1 {:.1} GB/s",
            w16 / 1e9,
            w1 / 1e9
        );
    }

    #[test]
    fn bibw_roughly_doubles_bw_on_duplex_links() {
        let topo = Arc::new(presets::beluga());
        let bw = osu_bw(
            &topo,
            cfg(TuningMode::SinglePath),
            64 * MIB,
            P2pConfig::default(),
        );
        let bibw = osu_bibw(
            &topo,
            cfg(TuningMode::SinglePath),
            64 * MIB,
            P2pConfig::default(),
        );
        let ratio = bibw / bw;
        assert!(
            (1.8..2.05).contains(&ratio),
            "bibw/bw ratio {ratio} (bibw {:.1}, bw {:.1})",
            bibw / 1e9,
            bw / 1e9
        );
    }

    #[test]
    fn mbw_mr_two_pairs_aggregate() {
        // Pairs (0→2) and (1→3) on Beluga: disjoint direct links, so the
        // single-path aggregate is ~2× one link.
        let topo = Arc::new(presets::beluga());
        let agg = osu_mbw_mr(
            &topo,
            cfg(TuningMode::SinglePath),
            32 * MIB,
            2,
            P2pConfig::default(),
        );
        assert!(
            agg > 1.8 * 48e9 && agg <= 2.0 * 48e9,
            "aggregate {:.1} GB/s",
            agg / 1e9
        );
    }

    #[test]
    fn mbw_mr_multipath_shares_the_fabric() {
        // With both pairs running model-driven multi-path, staged detours
        // contend; the aggregate must still beat single path.
        let topo = Arc::new(presets::beluga());
        let single = osu_mbw_mr(
            &topo,
            cfg(TuningMode::SinglePath),
            32 * MIB,
            2,
            P2pConfig::default(),
        );
        let multi = osu_mbw_mr(
            &topo,
            cfg(TuningMode::Dynamic),
            32 * MIB,
            2,
            P2pConfig::default(),
        );
        assert!(
            multi > 1.1 * single,
            "multi {:.1} vs single {:.1} GB/s",
            multi / 1e9,
            single / 1e9
        );
    }

    #[test]
    fn latency_small_message_is_microseconds() {
        let topo = Arc::new(presets::beluga());
        let lat = osu_latency(&topo, cfg(TuningMode::SinglePath), 4096, 4);
        assert!(lat > 1e-6 && lat < 100e-6, "latency {:.2} us", lat * 1e6);
    }
}
