//! Measurements on a *loaded* fabric (paper Section 3, first paragraph:
//! "intra-node GPU interconnects are often shared among multiple
//! processes, which may lead to contention ... but our approach still
//! accelerates concurrent intra-node communication, including
//! collectives, if there are any under-utilized paths").
//!
//! Two rank pairs share the node: the *measured* pair runs the OMB BW
//! protocol while the *loader* pair saturates its own direct link with
//! back-to-back single-path traffic for the whole measurement.

use mpx_mpi::{waitall, World};
use mpx_topo::units::Bandwidth;
use mpx_topo::Topology;
use mpx_ucx::UcxConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Configuration of a loaded-bandwidth measurement.
#[derive(Debug, Clone, Copy)]
pub struct LoadedConfig {
    /// Message size of the measured transfer.
    pub n: usize,
    /// Outstanding messages per iteration for the measured pair.
    pub window: usize,
    /// Timed iterations for the measured pair.
    pub iterations: usize,
    /// Message size of each background transfer.
    pub load_n: usize,
}

impl Default for LoadedConfig {
    fn default() -> Self {
        LoadedConfig {
            n: 32 << 20,
            window: 1,
            iterations: 4,
            load_n: 16 << 20,
        }
    }
}

/// Measures rank0 → rank1 bandwidth while ranks 2 → 3 continuously send
/// single-path traffic on their own direct link. Returns the measured
/// pair's bandwidth in bytes/s.
///
/// The loader uses the *direct* path only (a well-behaved neighbour);
/// the measured pair uses whatever `ucx` configures, so comparing
/// `TuningMode::SinglePath` and `TuningMode::Dynamic` here answers the
/// paper's shared-fabric question directly.
pub fn osu_bw_loaded(topo: &Arc<Topology>, ucx: UcxConfig, cfg: LoadedConfig) -> Bandwidth {
    assert!(topo.gpus().len() >= 4, "loaded test needs 4 GPUs");
    let world = World::new(topo.clone(), ucx);
    let stop = Arc::new(AtomicBool::new(false));
    let results = world.run(4, move |r| {
        match r.rank {
            0 | 1 => {
                // Measured pair: standard windowed BW protocol.
                let bufs: Vec<_> = (0..cfg.window).map(|_| r.alloc(cfg.n)).collect();
                let mut t0 = r.now();
                for it in 0..1 + cfg.iterations {
                    if it == 1 {
                        t0 = r.now();
                    }
                    let reqs: Vec<_> = bufs
                        .iter()
                        .enumerate()
                        .map(|(k, buf)| {
                            let tag = (it * cfg.window + k) as u64;
                            if r.rank == 0 {
                                r.isend(buf, cfg.n, 1, tag)
                            } else {
                                r.irecv(buf, cfg.n, Some(0), Some(tag))
                            }
                        })
                        .collect();
                    waitall(r.thread(), &reqs);
                }
                let bw = (cfg.iterations * cfg.window * cfg.n) as f64 / r.now().secs_since(t0);
                stop.store(true, Ordering::Release);
                Some(bw)
            }
            _ => {
                // Loader pair: single-path back-to-back transfers until
                // the measured pair finishes. Only rank 2 reads the stop
                // flag; it tells rank 3 in-protocol (a STOP bit in the
                // tag), so both loaders always agree on the last
                // iteration regardless of when the flag flips.
                const STOP_BIT: u64 = 1 << 40;
                let buf = r.alloc(cfg.load_n);
                if r.rank == 2 {
                    let mut it = 0u64;
                    loop {
                        let last = stop.load(Ordering::Acquire);
                        let tag = (1 << 48) | it | if last { STOP_BIT } else { 0 };
                        r.send(&buf, cfg.load_n, 3, tag);
                        if last {
                            break;
                        }
                        it += 1;
                    }
                } else {
                    loop {
                        let req = r.irecv(&buf, cfg.load_n, Some(2), mpx_mpi::ANY_TAG);
                        let status = req.wait_status(r.thread());
                        if status.tag & STOP_BIT != 0 {
                            break;
                        }
                    }
                }
                None
            }
        }
    });
    results[0].expect("rank 0 measures")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::path::PathSelection;
    use mpx_topo::presets;
    use mpx_ucx::TuningMode;

    fn cfg(mode: TuningMode) -> UcxConfig {
        UcxConfig {
            mode,
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        }
    }

    #[test]
    fn multipath_still_helps_on_a_loaded_fabric() {
        // The paper's Section-3 claim: with the 2↔3 link busy, the 0↔1
        // transfer's staged detours (via 2 and 3) are partially
        // contended, yet multi-path must still beat single path — the
        // detours' *other* legs are idle.
        let topo = Arc::new(presets::beluga());
        let single = osu_bw_loaded(&topo, cfg(TuningMode::SinglePath), LoadedConfig::default());
        let multi = osu_bw_loaded(&topo, cfg(TuningMode::Dynamic), LoadedConfig::default());
        let gain = multi / single;
        assert!(
            gain > 1.2,
            "loaded-fabric multi-path gain {gain:.2} (single {:.1}, multi {:.1} GB/s)",
            single / 1e9,
            multi / 1e9
        );
    }

    #[test]
    fn load_shrinks_the_multipath_gain() {
        // Contention does cost something: the gain under load is smaller
        // than on an idle fabric.
        let topo = Arc::new(presets::beluga());
        let idle_single = crate::osu_bw(
            &topo,
            cfg(TuningMode::SinglePath),
            32 << 20,
            crate::P2pConfig::default(),
        );
        let idle_multi = crate::osu_bw(
            &topo,
            cfg(TuningMode::Dynamic),
            32 << 20,
            crate::P2pConfig::default(),
        );
        let loaded_single =
            osu_bw_loaded(&topo, cfg(TuningMode::SinglePath), LoadedConfig::default());
        let loaded_multi = osu_bw_loaded(&topo, cfg(TuningMode::Dynamic), LoadedConfig::default());
        let idle_gain = idle_multi / idle_single;
        let loaded_gain = loaded_multi / loaded_single;
        assert!(
            loaded_gain < idle_gain,
            "load should shrink the gain: idle {idle_gain:.2} vs loaded {loaded_gain:.2}"
        );
        // And the single-path measurement itself is unaffected by the
        // loader (disjoint direct links, full duplex).
        assert!(
            (loaded_single - idle_single).abs() / idle_single < 0.02,
            "loader must not perturb the single-path baseline"
        );
    }
}
