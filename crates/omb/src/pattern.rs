//! Concurrent communication patterns: several P2P transfers in flight at
//! once, planned either blindly (per-transfer Algorithm 1) or jointly
//! (the contention-aware fixed point of `mpx_model::contention`).
//!
//! This is the evaluation harness for the paper's future-work extension
//! and for its Section-3 remark that "if the communication pattern can
//! be known ahead of time, unused paths can be extracted and utilized
//! more effectively".

use mpx_gpu::GpuRuntime;
use mpx_model::{plan_concurrent, ConcurrentTransfer, Planner, TransferPlan};
use mpx_sim::Engine;
use mpx_topo::params::extract_all;
use mpx_topo::path::{enumerate_paths, PathSelection};
use mpx_topo::units::Secs;
use mpx_topo::Topology;
use mpx_ucx::execute_plan;
use std::sync::Arc;

/// How the pattern's transfers are configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternPlanning {
    /// Everything on direct links.
    SinglePath,
    /// Each transfer planned in isolation (contention-blind Algorithm 1).
    Blind,
    /// All transfers planned jointly (contention-aware fixed point).
    Joint,
}

/// Outcome of one pattern execution.
#[derive(Debug, Clone, Copy)]
pub struct PatternResult {
    /// Virtual time until the last transfer finished.
    pub makespan: Secs,
    /// Total bytes moved divided by makespan.
    pub aggregate_bandwidth: f64,
}

/// Executes `pairs` of GPU-index transfers, `n` bytes each, all starting
/// at t = 0, and returns the makespan. Deterministic (callback-driven).
pub fn run_pattern(
    topo: &Arc<Topology>,
    pairs: &[(usize, usize)],
    n: usize,
    sel: PathSelection,
    planning: PatternPlanning,
) -> PatternResult {
    assert!(!pairs.is_empty() && n > 0);
    let gpus = topo.gpus();
    let planner = Planner::new(topo.clone());

    let transfers: Vec<ConcurrentTransfer> = pairs
        .iter()
        .map(|&(s, d)| {
            let effective_sel = match planning {
                PatternPlanning::SinglePath => PathSelection::DIRECT_ONLY,
                _ => sel,
            };
            let paths =
                enumerate_paths(topo, gpus[s], gpus[d], effective_sel).expect("pattern paths");
            let params = extract_all(topo, &paths).expect("pattern params");
            ConcurrentTransfer { paths, params, n }
        })
        .collect();

    let plans: Vec<TransferPlan> = match planning {
        PatternPlanning::Joint => plan_concurrent(&planner, topo, &transfers, 8).plans,
        _ => transfers
            .iter()
            .map(|t| planner.compute_with_params(t.n, &t.paths, t.params.clone()))
            .collect(),
    };

    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    for (((s, d), t), plan) in pairs.iter().zip(&transfers).zip(&plans) {
        let src = rt.alloc(gpus[*s], n);
        let dst = rt.alloc(gpus[*d], n);
        execute_plan(&rt, plan, &t.paths, &src, &dst, (*s * 16 + *d) as u64);
    }
    rt.engine().run_until_idle();
    let makespan = rt.engine().now().as_secs();
    PatternResult {
        makespan,
        aggregate_bandwidth: (pairs.len() * n) as f64 / makespan,
    }
}

/// The standard ring pattern over all GPUs (rank i → rank i+1 mod p).
pub fn ring_pairs(gpus: usize) -> Vec<(usize, usize)> {
    (0..gpus).map(|i| (i, (i + 1) % gpus)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    #[test]
    fn joint_planning_beats_blind_on_a_ring() {
        let topo = Arc::new(presets::beluga());
        let pairs = ring_pairs(4);
        let n = 64 * MIB;
        let sel = PathSelection::THREE_GPUS;
        let blind = run_pattern(&topo, &pairs, n, sel, PatternPlanning::Blind);
        let joint = run_pattern(&topo, &pairs, n, sel, PatternPlanning::Joint);
        assert!(
            joint.makespan <= blind.makespan * 1.001,
            "joint {:.0}us should not lose to blind {:.0}us",
            joint.makespan * 1e6,
            blind.makespan * 1e6
        );
    }

    #[test]
    fn multipath_still_beats_single_path_under_contention() {
        let topo = Arc::new(presets::beluga());
        let pairs = ring_pairs(4);
        let n = 64 * MIB;
        let single = run_pattern(
            &topo,
            &pairs,
            n,
            PathSelection::THREE_GPUS,
            PatternPlanning::SinglePath,
        );
        let joint = run_pattern(
            &topo,
            &pairs,
            n,
            PathSelection::THREE_GPUS,
            PatternPlanning::Joint,
        );
        // With the whole fabric loaded the gain is modest, but it must
        // not regress below single path.
        assert!(
            joint.aggregate_bandwidth > single.aggregate_bandwidth,
            "joint {:.1} vs single {:.1} GB/s",
            joint.aggregate_bandwidth / 1e9,
            single.aggregate_bandwidth / 1e9
        );
    }

    #[test]
    fn lone_pair_unaffected_by_planning_mode() {
        let topo = Arc::new(presets::narval());
        let pairs = [(0usize, 1usize)];
        let n = 32 * MIB;
        let blind = run_pattern(
            &topo,
            &pairs,
            n,
            PathSelection::THREE_GPUS,
            PatternPlanning::Blind,
        );
        let joint = run_pattern(
            &topo,
            &pairs,
            n,
            PathSelection::THREE_GPUS,
            PatternPlanning::Joint,
        );
        let rel = (blind.makespan - joint.makespan).abs() / blind.makespan;
        assert!(
            rel < 1e-6,
            "blind {} vs joint {}",
            blind.makespan,
            joint.makespan
        );
    }

    #[test]
    fn disjoint_pairs_run_at_full_speed() {
        let topo = Arc::new(presets::beluga());
        // (0,1) and (2,3): direct links disjoint; staged paths contend.
        let pairs = [(0usize, 1usize), (2usize, 3usize)];
        let n = 64 * MIB;
        let joint = run_pattern(
            &topo,
            &pairs,
            n,
            PathSelection::THREE_GPUS,
            PatternPlanning::Joint,
        );
        let single = run_pattern(
            &topo,
            &pairs,
            n,
            PathSelection::THREE_GPUS,
            PatternPlanning::SinglePath,
        );
        assert!(
            joint.aggregate_bandwidth > 1.2 * single.aggregate_bandwidth,
            "joint {:.1} vs single {:.1} GB/s",
            joint.aggregate_bandwidth / 1e9,
            single.aggregate_bandwidth / 1e9
        );
    }
}
