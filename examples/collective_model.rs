//! Predicting collective latency without running the collective — the
//! paper's "extend our model to collective operations" future work.
//!
//! For each per-rank size, the model prices the K-nomial allreduce's
//! step schedule (blind per-transfer plans evaluated under per-step
//! contention, plus reduction kernels) and we compare against the full
//! simulated MPI stack.
//!
//! ```text
//! cargo run --example collective_model
//! ```

use mpx_model::predict_allreduce_knomial;
use mpx_omb::{osu_allreduce, AllreduceAlgo, CollectiveConfig};
use multipath_gpu::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(presets::beluga());
    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let kernel = GpuRuntime::new(Engine::new(topo.clone()))
        .kernel_cost()
        .to_owned();
    let coll = CollectiveConfig {
        ranks: 4,
        iterations: 2,
        warmup: 1,
    };

    println!("MPI_Allreduce on Beluga, 4 ranks, K-nomial scatter-reduce + allgather\n");
    println!(
        "{:>8} {:>12} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7}",
        "size", "paths", "pred (us)", "meas (us)", "err", "pred comm", "pred compute", "steps"
    );
    for n in [4usize << 20, 16 << 20, 64 << 20, 256 << 20] {
        for (label, sel, mode) in [
            ("direct", PathSelection::DIRECT_ONLY, TuningMode::SinglePath),
            ("3_GPUs", PathSelection::THREE_GPUS, TuningMode::Dynamic),
        ] {
            let pred = predict_allreduce_knomial(&planner, &gpus, n, sel, &|b| kernel.cost(b))
                .expect("prediction");
            let meas = osu_allreduce(
                &topo,
                UcxConfig {
                    mode,
                    selection: sel,
                    ..UcxConfig::default()
                },
                n,
                AllreduceAlgo::Rabenseifner,
                coll,
            );
            println!(
                "{:>8} {:>12} | {:>12.0} {:>12.0} {:>6.1}% | {:>12.0} {:>12.0} {:>7}",
                mpx_topo::units::format_bytes(n),
                label,
                pred.total * 1e6,
                meas * 1e6,
                (pred.total - meas).abs() / meas * 100.0,
                pred.comm * 1e6,
                pred.compute * 1e6,
                pred.steps
            );
        }
    }
    println!("\nThe prediction prices each step's transfer set with blind per-");
    println!("transfer plans evaluated under fair-share contention — no");
    println!("simulation, microseconds of planner time.");
}
