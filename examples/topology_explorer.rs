//! Prints a preset topology (Figs. 1 and 3 of the paper), the candidate
//! paths between two GPUs, and the Hockney parameters the model extracts
//! for each.
//!
//! ```text
//! cargo run --example topology_explorer -- [beluga|narval|pcie|synthetic]
//! ```

use mpx_topo::params::extract_path_params;
use mpx_topo::path::enumerate_paths;
use multipath_gpu::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "beluga".into());
    let topo = match which.as_str() {
        "beluga" => presets::beluga(),
        "narval" => presets::narval(),
        "pcie" => presets::pcie_only(4),
        "synthetic" => presets::synthetic_default(),
        other => {
            eprintln!("unknown preset `{other}` (try beluga|narval|pcie|synthetic)");
            std::process::exit(1);
        }
    };

    println!("{}", topo.describe());

    let gpus = topo.gpus();
    if gpus.len() < 2 {
        return;
    }
    let (src, dst) = (gpus[0], gpus[1]);
    println!("candidate paths {src} -> {dst}:");
    match enumerate_paths(&topo, src, dst, PathSelection::THREE_GPUS_WITH_HOST) {
        Ok(paths) => {
            for p in &paths {
                let params = extract_path_params(&topo, p).expect("extract");
                print!("  {:<18}", p.kind.to_string());
                print!(
                    " leg1: alpha {:>6.2} us, beta {:>6.1} GB/s",
                    params.first.alpha * 1e6,
                    params.first.beta / 1e9
                );
                if let Some(second) = params.second {
                    print!(
                        " | eps {:>4.1} us | leg2: alpha {:>6.2} us, beta {:>6.1} GB/s",
                        params.eps * 1e6,
                        second.alpha * 1e6,
                        second.beta / 1e9
                    );
                }
                println!();
            }
            let total: f64 = paths
                .iter()
                .map(|p| {
                    extract_path_params(&topo, p)
                        .expect("extract")
                        .bottleneck_bandwidth()
                })
                .sum();
            let direct = topo.link_between(src, dst).expect("direct").bandwidth;
            println!(
                "\naggregate ceiling {:.1} GB/s vs direct {:.1} GB/s -> ideal speedup {:.2}x",
                total / 1e9,
                direct / 1e9,
                total / direct
            );
        }
        Err(e) => println!("  (no multi-path candidates: {e})"),
    }
}
