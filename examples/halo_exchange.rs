//! 2-D stencil halo exchange on a 2×2 GPU grid — the classic HPC
//! communication pattern the paper's introduction motivates. Each
//! iteration: a compute phase, then every GPU exchanges boundary strips
//! ("halos") with its row and column neighbours.
//!
//! Halo exchange is bidirectional by nature, so this also demonstrates
//! the paper's Observation 5 in application form: enabling the
//! host-staged path *hurts* here, while GPU-staged multi-path helps.
//!
//! ```text
//! cargo run --example halo_exchange
//! ```

use mpx_model::{plan_concurrent, ConcurrentTransfer};
use mpx_topo::params::extract_all;
use mpx_topo::path::enumerate_paths;
use multipath_gpu::prelude::*;
use std::sync::Arc;

/// One halo-exchange iteration for rank `r` on a 2×2 grid.
fn exchange(rank: &Rank, halo: usize, iter: u64) {
    let (row, col) = (rank.rank / 2, rank.rank % 2);
    let row_peer = row * 2 + (1 - col); // horizontal neighbour
    let col_peer = (1 - row) * 2 + col; // vertical neighbour
    let send_h = rank.alloc(halo);
    let recv_h = rank.alloc(halo);
    let send_v = rank.alloc(halo);
    let recv_v = rank.alloc(halo);
    let tag = iter << 8;
    // Post everything, then wait: both directions of both exchanges
    // overlap, loading the fabric bidirectionally.
    let reqs = [
        rank.irecv(&recv_h, halo, Some(row_peer), Some(tag | 1)),
        rank.irecv(&recv_v, halo, Some(col_peer), Some(tag | 2)),
        rank.isend(&send_h, halo, row_peer, tag | 1),
        rank.isend(&send_v, halo, col_peer, tag | 2),
    ];
    waitall(rank.thread(), &reqs);
}

/// The halo pattern as a concurrent-transfer set (both directions of
/// both neighbour exchanges for every rank).
fn halo_pattern(topo: &Topology, halo: usize, sel: PathSelection) -> Vec<ConcurrentTransfer> {
    let gpus = topo.gpus();
    let mut transfers = Vec::new();
    for rank in 0..4usize {
        let (row, col) = (rank / 2, rank % 2);
        for peer in [row * 2 + (1 - col), (1 - row) * 2 + col] {
            let paths = enumerate_paths(topo, gpus[rank], gpus[peer], sel).unwrap();
            let params = extract_all(topo, &paths).unwrap();
            transfers.push(ConcurrentTransfer {
                paths,
                params,
                n: halo,
            });
        }
    }
    transfers
}

fn run(topo: &Arc<Topology>, mode: TuningMode, sel: PathSelection, halo: usize) -> f64 {
    let cfg = UcxConfig {
        mode,
        selection: sel,
        ..UcxConfig::default()
    };
    let world = World::new(topo.clone(), cfg);
    if mode == TuningMode::Static {
        // Pattern-aware: jointly plan the eight concurrent halo
        // transfers (the paper's future-work contention extension) and
        // install the resulting share policy.
        let planner = Planner::new(topo.clone());
        let pattern = halo_pattern(topo, halo, sel);
        let joint = plan_concurrent(&planner, topo, &pattern, 8);
        let shares: Vec<f64> = joint.plans[0].paths.iter().map(|p| p.theta).collect();
        world.context().install_static_shares(shares);
    }
    let steps = 5u64;
    let times = world.run(4, move |rank| {
        rank.barrier();
        let t0 = rank.now();
        for it in 0..steps {
            rank.compute(100e-6); // stencil update
            exchange(&rank, halo, it);
        }
        rank.now().secs_since(t0) / steps as f64
    });
    times.into_iter().fold(0.0, f64::max)
}

fn main() {
    let halo = 32 << 20; // 32 MB boundary strips (large 3-D subdomains)
    println!(
        "2x2 halo exchange, {} MB halos, 0.1 ms compute per step\n",
        halo >> 20
    );
    for (name, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        let single = run(
            &topo,
            TuningMode::SinglePath,
            PathSelection::THREE_GPUS,
            halo,
        );
        let blind = run(&topo, TuningMode::Dynamic, PathSelection::THREE_GPUS, halo);
        let aware = run(&topo, TuningMode::Static, PathSelection::THREE_GPUS, halo);
        println!(
            "{name:>7}: single {:.2} ms | blind multi {:.2} ms ({:.2}x) | pattern-aware {:.2} ms ({:.2}x)",
            single * 1e3,
            blind * 1e3,
            single / blind,
            aware * 1e3,
            single / aware
        );
    }
    println!("\nWith every GPU exchanging at once, most \"spare\" paths are busy:");
    println!("contention-blind multi-path can even lose to single-path. Joint");
    println!("(pattern-aware) planning backs off the contended detours and");
    println!("recovers the available gain — the paper's future-work extension.");
}
