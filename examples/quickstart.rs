//! Quickstart: ask the model for the optimal multi-path split of one
//! GPU-to-GPU transfer, execute it on the simulated fabric, and compare
//! prediction with measurement.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use multipath_gpu::prelude::*;
use std::sync::Arc;

fn main() {
    // A Beluga node: 4×V100, 2 NVLink-V2 sub-links per pair, PCIe Gen3.
    let topo = Arc::new(presets::beluga());
    println!("{}", topo.describe());

    // Step 1+2 (paper Fig. 2a): load the model over this topology.
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(rt, UcxConfig::default());
    let gpus = topo.gpus();
    let n = 64 << 20; // 64 MiB

    // Step 3+4: the optimal configuration for a 64 MiB transfer.
    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    println!("plan for {} bytes:", plan.n);
    for p in plan.active_paths() {
        println!(
            "  path {} ({}): theta = {:.3}, {} bytes in {} chunk(s)",
            p.index, p.kind, p.theta, p.share_bytes, p.chunks
        );
    }
    println!(
        "model prediction: {:.2} GB/s ({:.0} us)",
        plan.predicted_bandwidth / 1e9,
        plan.predicted_time * 1e6
    );

    // Step 5: hand the plan to the pipeline engine and run it.
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    let t0 = ctx.runtime().engine().now();
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let measured = ctx.runtime().engine().now().secs_since(t0);
    println!(
        "simulated:        {:.2} GB/s ({:.0} us)",
        n as f64 / measured / 1e9,
        measured * 1e6
    );

    // The single-path baseline for contrast.
    let direct = topo.link_between(gpus[0], gpus[1]).unwrap();
    let direct_time = direct.transfer_time(n);
    println!(
        "direct-path-only: {:.2} GB/s  ->  multi-path speedup {:.2}x",
        n as f64 / direct_time / 1e9,
        direct_time / measured
    );
}
