//! Modelling *your* machine: build a custom topology with the builder,
//! lint it, export it to JSON, and ask the model how transfers should be
//! split on it.
//!
//! The imaginary box here: three GPUs on a PCIe switch with one NVLink
//! bridge between GPU 0 and GPU 1 (a common workstation layout).
//!
//! ```text
//! cargo run --example custom_topology
//! ```

use mpx_topo::units::{gb_per_s, micros};
use mpx_topo::{GpuModel, LinkKind, NumaNode};
use multipath_gpu::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Describe the machine.
    let mut b = TopologyBuilder::new("workstation");
    let numa = NumaNode(0);
    let g0 = b.gpu(GpuModel::Generic, numa);
    let g1 = b.gpu(GpuModel::Generic, numa);
    let g2 = b.gpu(GpuModel::Generic, numa);
    let hm = b.host_memory(numa);
    // One NVLink bridge between g0 and g1.
    b.duplex_link(g0, g1, LinkKind::NvLinkV2, gb_per_s(48.0), micros(1.8), 2)
        .unwrap();
    // Everything hangs off the PCIe switch (peer-to-peer capable).
    for (a, c) in [(g0, g2), (g1, g2)] {
        b.duplex_link(a, c, LinkKind::Pcie, gb_per_s(12.0), micros(3.0), 1)
            .unwrap();
    }
    for g in [g0, g1, g2] {
        b.duplex_link(g, hm, LinkKind::Pcie, gb_per_s(12.0), micros(4.0), 1)
            .unwrap();
    }
    b.shared_link(hm, hm, LinkKind::HostDram, gb_per_s(30.0), micros(0.1), 1)
        .unwrap();
    let topo = Arc::new(b.build());

    // 2. Lint it.
    let issues = mpx_topo::validate(&topo);
    if issues.is_empty() {
        println!("validation: clean\n");
    } else {
        for i in &issues {
            println!("validation: {i}");
        }
        println!();
    }

    // 3. What does the model do with it?
    let planner = Planner::new(topo.clone());
    for (src, dst, label) in [(g0, g1, "NVLink pair"), (g0, g2, "PCIe-peer pair")] {
        let plan = planner
            .plan(src, dst, 64 << 20, PathSelection::THREE_GPUS_WITH_HOST)
            .unwrap();
        println!("{label} ({src} -> {dst}):");
        print!("{}", plan.describe());
        println!();
    }

    // 4. Check the plan against the simulated machine.
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig::default(),
    );
    let n = 64 << 20;
    let src = ctx.runtime().alloc(g0, n);
    let dst = ctx.runtime().alloc(g1, n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    println!(
        "simulated g0 -> g1: {:.2} GB/s",
        n as f64 / ctx.runtime().engine().now().as_secs() / 1e9
    );

    // 5. Export for reuse with the CLI (`mpx plan --topo-file ...`).
    let json = serde_json::to_string_pretty(topo.as_ref()).unwrap();
    println!(
        "\nJSON export: {} bytes (try `mpx plan --topo-file ws.json`)",
        json.len()
    );
}
