//! The paper's core argument, head to head: exhaustive static tuning
//! evaluates dozens of candidate configurations by measurement; the
//! model picks one analytically. This example counts the work each
//! spends and compares the bandwidth each achieves.
//!
//! ```text
//! cargo run --example autotune_compare
//! ```

use mpx_topo::path::enumerate_paths;
use mpx_ucx::{measure_plan, tune_exhaustive};
use multipath_gpu::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    let sel = PathSelection::THREE_GPUS_WITH_HOST;
    let cfg = PlannerConfig::default();

    println!(
        "{:>8} | {:>22} {:>12} | {:>22} {:>12} | {:>6}",
        "size", "exhaustive (GB/s)", "evals", "model (GB/s)", "wall", "gap"
    );
    for n in [4 << 20, 16 << 20, 64 << 20, 256 << 20] {
        // Static: exhaustive grid search over share splits.
        let t0 = Instant::now();
        let tuned = tune_exhaustive(&topo, gpus[0], gpus[1], n, sel, &cfg, 8).unwrap();
        let tune_wall = t0.elapsed();

        // Dynamic: one closed-form evaluation.
        let t1 = Instant::now();
        let planner = Planner::new(topo.clone());
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let plan_wall = t1.elapsed();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
        let model_bw = measure_plan(&topo, &plan, &paths, gpus[0], gpus[1]);

        let gap = (tuned.bandwidth - model_bw) / tuned.bandwidth * 100.0;
        println!(
            "{:>8} | {:>18.2} GB/s {:>8} cfg ({:>6.0?}) | {:>18.2} GB/s {:>12.0?} | {:>5.1}%",
            mpx_topo::units::format_bytes(n),
            tuned.bandwidth / 1e9,
            tuned.evaluated,
            tune_wall,
            model_bw / 1e9,
            plan_wall,
            gap
        );
    }
    println!("\n`gap` = how far the model's single analytic choice trails the");
    println!("exhaustively measured optimum (the paper reports <6% for n > 4MB).");
}
