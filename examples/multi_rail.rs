//! Inter-node multi-rail transfers: two Beluga-class nodes joined by
//! InfiniBand rails. The paper's model applies verbatim — rails are
//! heterogeneous parallel paths, so Eq. (8) splits a message across them
//! exactly as it splits across NVLink detours inside one node (the
//! "multi-node communication" future work of Section 6).
//!
//! ```text
//! cargo run --example multi_rail
//! ```

use multipath_gpu::prelude::*;
use std::sync::Arc;

fn measure(topo: &Arc<Topology>, rails: usize, n: usize) -> f64 {
    let sel = PathSelection {
        max_gpu_staged: rails - 1,
        host_staged: false,
    };
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig {
            selection: sel,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let (src, dst) = (gpus[0], gpus[4]); // node 0 -> node 1
    let s = ctx.runtime().alloc(src, n);
    let d = ctx.runtime().alloc(dst, n);
    // Warm, then measure.
    ctx.put_async(&s, &d, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let t0 = ctx.runtime().engine().now();
    ctx.put_async(&s, &d, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    n as f64 / ctx.runtime().engine().now().secs_since(t0)
}

fn main() {
    let n = 256 << 20;
    println!(
        "inter-node transfer gpu0(node0) -> gpu0(node1), {} MB\n",
        n >> 20
    );
    for total_rails in [1usize, 2, 4] {
        let topo = Arc::new(presets::two_node_beluga(total_rails));
        // Show the model's rail split first.
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let plan = planner
            .plan(
                gpus[0],
                gpus[4],
                n,
                PathSelection {
                    max_gpu_staged: total_rails - 1,
                    host_staged: false,
                },
            )
            .unwrap();
        let shares: Vec<String> = plan
            .active_paths()
            .map(|p| format!("{:.0}%", p.theta * 100.0))
            .collect();
        let bw = measure(&topo, total_rails, n);
        println!(
            "{total_rails} rail(s): {:>6.2} GB/s   (model split: {})",
            bw / 1e9,
            shares.join(" / ")
        );
    }
    println!("\nEach rail is PCIe-bound at ~12 GB/s; rails aggregate linearly,");
    println!("and the same Eq. (8) that splits NVLink paths splits the rails.");
}
