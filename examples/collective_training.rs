//! A data-parallel training step on 4 simulated GPUs: compute, then
//! allreduce the gradients — the workload class whose communication the
//! paper accelerates. Compares the default single-path stack with
//! model-driven multi-path transport.
//!
//! ```text
//! cargo run --example collective_training
//! ```

use multipath_gpu::prelude::*;
use std::sync::Arc;

/// One training step: `compute_ms` of simulated kernel time followed by
/// an allreduce of `grad_bytes` of gradients. Returns the mean step time.
fn train(topo: &Arc<Topology>, mode: TuningMode, grad_bytes: usize, steps: usize) -> f64 {
    let cfg = UcxConfig {
        mode,
        // Collectives run without host staging (paper Section 5.3).
        selection: PathSelection::THREE_GPUS,
        ..UcxConfig::default()
    };
    let world = World::new(topo.clone(), cfg);
    let times = world.run(4, move |rank| {
        let grads = rank.alloc(grad_bytes);
        rank.barrier();
        let t0 = rank.now();
        for _ in 0..steps {
            // Backward pass: ~2 ms of compute.
            rank.compute(2e-3);
            // Gradient allreduce (K-nomial scatter-reduce + allgather).
            mpx_mpi::allreduce_rabenseifner(&rank, &grads, grad_bytes, ReduceOp::Sum);
        }
        rank.now().secs_since(t0) / steps as f64
    });
    times.into_iter().fold(0.0, f64::max)
}

fn main() {
    let grad_bytes = 128 << 20; // a 32M-parameter f32 model
    let steps = 3;
    println!(
        "data-parallel step: 2 ms compute + {} MB gradient allreduce on 4 GPUs\n",
        grad_bytes >> 20
    );
    for (name, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        let single = train(&topo, TuningMode::SinglePath, grad_bytes, steps);
        let multi = train(&topo, TuningMode::Dynamic, grad_bytes, steps);
        println!(
            "{name:>7}: single-path {:.2} ms/step, multi-path {:.2} ms/step  ->  {:.2}x step speedup",
            single * 1e3,
            multi * 1e3,
            single / multi
        );
    }
}
