//! Renders a Fig. 2(b)-style schedule of one multi-path transfer: every
//! chunk's copy on every path, with issue/activation/completion times,
//! pulled from the simulator's flow trace.
//!
//! ```text
//! cargo run --example p2p_pipeline              # text lanes
//! cargo run --example p2p_pipeline -- trace.json  # + Chrome trace export
//! ```

use multipath_gpu::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(presets::beluga());
    // Tracing on: every flow leaves a TraceRecord.
    let engine = Engine::with_tracing(topo.clone(), true);
    let rt = GpuRuntime::new(engine);
    let ctx = UcxContext::new(rt, UcxConfig::default());
    let gpus = topo.gpus();

    let n = 16 << 20;
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    // Warmup transfer: absorbs the one-time IPC handle open (~80 µs) so
    // the traced schedule shows steady-state behaviour.
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let _ = ctx.runtime().engine().take_trace();
    let t_base = ctx.runtime().engine().now();
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();

    let mut trace = ctx.runtime().engine().take_trace();
    for r in &mut trace {
        r.issued = r.issued - t_base;
        r.activated = r.activated - t_base;
        r.completed = r.completed - t_base;
    }
    trace.sort_by_key(|r| (r.activated, r.completed));

    println!("multi-path schedule of a 16 MiB transfer gpu0 -> gpu1\n");
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12}",
        "flow", "bytes", "issued(us)", "start(us)", "end(us)"
    );
    let end = trace.iter().map(|r| r.completed).max().unwrap();
    for r in &trace {
        println!(
            "{:<24} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            r.label,
            r.bytes,
            r.issued.as_secs() * 1e6,
            r.activated.as_secs() * 1e6,
            r.completed.as_secs() * 1e6
        );
    }
    println!(
        "\ntotal: {:.1} us  ->  {:.2} GB/s aggregate",
        end.as_secs() * 1e6,
        n as f64 / end.as_secs() / 1e9
    );

    // ASCII lane view, one row per path/leg.
    println!(
        "\nlane view (each column ~ {:.0} us):",
        end.as_secs() * 1e6 / 60.0
    );
    let mut lanes: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for r in &trace {
        let lane_key = r.label.split(".c").next().unwrap_or(&r.label).to_string()
            + if r.label.contains("leg2") {
                ".leg2"
            } else {
                ".leg1"
            };
        let span = (r.activated.as_secs(), r.completed.as_secs());
        match lanes.iter_mut().find(|(k, _)| *k == lane_key) {
            Some((_, spans)) => spans.push(span),
            None => lanes.push((lane_key, vec![span])),
        }
    }
    for (key, spans) in &lanes {
        let mut row = vec![' '; 60];
        for (a, b) in spans {
            let i0 = (a / end.as_secs() * 59.0) as usize;
            let i1 = (b / end.as_secs() * 59.0) as usize;
            for c in row.iter_mut().take(i1 + 1).skip(i0) {
                *c = '#';
            }
        }
        println!("{:<22} |{}|", key, row.iter().collect::<String>());
    }

    // Optional: export the schedule for chrome://tracing / Perfetto.
    if let Some(path) = std::env::args().nth(1) {
        let json = mpx_sim::trace_to_chrome_json(&trace);
        std::fs::write(&path, json).expect("write trace");
        println!(
            "
wrote Chrome trace to {path} (load in chrome://tracing)"
        );
    }
}
