//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the sibling `serde` stub's `Value`-based traits, without `syn`/`quote`
//! (unavailable offline): the input item is parsed at token level and
//! the impl is emitted as a source string.
//!
//! Supported shapes (everything this workspace derives):
//! * non-generic structs with named fields (+ `#[serde(default)]`),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple, and struct variants (externally tagged).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed shape of the derive input item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (stub data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility up to the `struct`/`enum`
    // keyword.
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, `crate`, ...
            }
            _ => i += 1, // e.g. the group in `pub(crate)`
        }
    };
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    // Generics are not supported (and not used by this workspace).
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` not supported");
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream()),
                }
            } else {
                Item::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::TupleStruct {
            name,
            arity: count_top_level_fields(g.stream()),
        },
        other => panic!("unsupported item body for `{name}`: {other:?}"),
    }
}

/// Parses `attr* vis? name : type` fields, recording `#[serde(default)]`.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let text = g.to_string().replace(' ', "");
                if text.starts_with("[serde(") && text.contains("default") {
                    default = true;
                }
            }
            i += 2;
        }
        // Visibility.
        while matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                &tokens.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        fields.push(Field {
            name: id.to_string(),
            default,
        });
        i += 1;
        // `:` then the type, up to a comma at angle-depth 0.
        debug_assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        i += 1;
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts comma-separated fields of a tuple struct / tuple variant.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip `= discriminant` (unused here) and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation (string-built, parsed back into a TokenStream)
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__o.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 let mut __o: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}serde::Value::Object(__o)\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.0) }}\n}}\n"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Array(vec![{}]) }}\n}}\n",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         serde::Serialize::to_value(__x0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.default {
                    inits.push_str(&format!(
                        "{f}: serde::__field_or_default(__o, \"{f}\")?,\n",
                        f = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: serde::__field(__o, \"{f}\", \"{name}\")?,\n",
                        f = f.name
                    ));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::ValueError> {{\n\
                 let __o = __v.as_object().ok_or_else(|| serde::ValueError::expected(\"object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::ValueError> {{\n\
             Ok({name}(serde::Deserialize::from_value(__v)?))\n}}\n}}\n"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::ValueError> {{\n\
                 let __a = __v.as_array().ok_or_else(|| serde::ValueError::expected(\"array for {name}\"))?;\n\
                 if __a.len() != {arity} {{ return Err(serde::ValueError::expected(\"array of length {arity}\")); }}\n\
                 Ok({name}({}))\n}}\n}}\n",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = __inner.as_array().ok_or_else(|| serde::ValueError::expected(\"array for {name}::{vn}\"))?;\n\
                             if __a.len() != {n} {{ return Err(serde::ValueError::expected(\"array of length {n}\")); }}\n\
                             return Ok({name}::{vn}({}));\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.default {
                                    format!(
                                        "{f}: serde::__field_or_default(__fo, \"{f}\")?",
                                        f = f.name
                                    )
                                } else {
                                    format!(
                                        "{f}: serde::__field(__fo, \"{f}\", \"{name}::{vn}\")?",
                                        f = f.name
                                    )
                                }
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __fo = __inner.as_object().ok_or_else(|| serde::ValueError::expected(\"object for {name}::{vn}\"))?;\n\
                             return Ok({name}::{vn} {{ {} }});\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::ValueError> {{\n\
                 if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let Some(__o) = __v.as_object() {{\n\
                 if __o.len() == 1 {{\n\
                 let (__tag, __inner) = &__o[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n}}\n}}\n\
                 Err(serde::ValueError::expected(\"valid variant of {name}\"))\n}}\n}}\n"
            )
        }
    }
}
