//! Offline stand-in for the `rand` crate.
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range`
//! over integer and float ranges — the subset this workspace uses. The
//! generator is xoshiro256++ seeded via SplitMix64: high-quality,
//! deterministic, and identical on every platform. Streams differ from
//! upstream rand's ChaCha-based `StdRng`, which is fine here: every
//! consumer only requires *reproducibility for a given seed*, not any
//! specific stream.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (`rand::Rng` subset).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniform sample of `T` over its full domain (`[0,1)` for floats).
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::gen_full(self)
    }
}

/// Types that can be sampled uniformly by this stub.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample over the type's natural full domain.
    fn gen_full<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_closed(rng, lo, hi)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Lemire-style unbiased rejection over the span.
                debug_assert!(span > 0);
                loop {
                    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    let hi_part = (x % span) as $t;
                    // u128 modulo bias over a 128-bit draw is far below
                    // one part in 2^64 for any span this workspace uses.
                    return lo.wrapping_add(hi_part);
                }
            }
            fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                if lo == hi {
                    return lo;
                }
                if hi < <$t>::MAX {
                    Self::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    Self::sample_half_open(rng, lo - 1, hi).max(lo)
                } else {
                    rng.next_u64() as $t
                }
            }
            fn gen_full<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 53-bit resolution makes the closed/half-open distinction
        // immaterial; clamp for exactness at the top end.
        Self::sample_half_open(rng, lo, hi).min(hi)
    }
    fn gen_full<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::sample_half_open(rng, 0.0, 1.0)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
    fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi).min(hi)
    }
    fn gen_full<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::sample_half_open(rng, 0.0, 1.0)
    }
}

/// Named RNG implementations (`rand::rngs` subset).
pub mod rngs {
    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        let mut lo_seen = f64::INFINITY;
        let mut hi_seen = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(-0.3..=0.3);
            assert!((-0.3..=0.3).contains(&x));
            lo_seen = lo_seen.min(x);
            hi_seen = hi_seen.max(x);
        }
        // The spread is actually exercised, not collapsed to a point.
        assert!(lo_seen < -0.25 && hi_seen > 0.25);
    }

    #[test]
    fn closed_int_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
