//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], and `Bencher::iter` — backed by a simple wall-clock
//! harness instead of criterion's statistical machinery. Each benchmark
//! is warmed up once, then timed for a bounded number of batches; the
//! mean ns/iter and iters/sec are printed to stdout.
//!
//! The measured numbers are honest monotonic-clock timings, just without
//! outlier rejection or confidence intervals. Benches also accept (and
//! ignore) the CLI flags cargo passes to `harness = false` targets.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Upper bound on total measurement time per benchmark.
const MAX_MEASURE_TIME: Duration = Duration::from_secs(3);

/// Re-exported for convenience; criterion 0.5 re-exports it too.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), 100, &mut f);
    }
}

/// A named benchmark within a group, as `group/function/input`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and an input parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// An id from an input parameter label only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (the stub needs no finalization).
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration pass.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for `sample_size` iterations but never more than the time cap.
    let iters = (MAX_MEASURE_TIME.as_secs_f64() / per_iter.as_secs_f64())
        .min(sample_size as f64)
        .max(1.0) as u64;
    b.iters = iters;
    b.elapsed = Duration::ZERO;
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!(
        "{label:<50} {:>14.1} ns/iter  ({:.1} iters/s)",
        ns,
        1e9 / ns
    );
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; nothing to parse
            // in this stub.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
