//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`
//! / `prop_filter_map`, range and tuple strategies, `collection::vec`,
//! `bool::ANY`, [`Just`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` macros — on top of the local `rand` stub.
//!
//! Differences from upstream: sampling is deterministic per test (fixed
//! seed derived from the test name), and failing cases are reported
//! without shrinking. That trades minimal counterexamples for zero
//! dependencies, which is the right trade in this offline build.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// RNG used to drive sampling; deterministic per seed.
pub type TestRng = StdRng;

/// Error signalled by a failing property (via `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (resampling otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Maps values through a partial function, resampling on `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Resampling budget for filtering strategies before giving up.
const FILTER_RETRIES: usize = 1_000;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_RETRIES} samples",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map `{}` rejected {FILTER_RETRIES} samples",
            self.whence
        );
    }
}

// --- ranges as strategies ---------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// --- tuples of strategies ---------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Boolean strategies.
pub mod bool {
    use super::{Rng, Strategy, TestRng};

    /// Uniform over `{false, true}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy, as `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// Anything usable as a `vec` length specification.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s with elementwise strategy `S`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vectors of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Uniform choice among same-valued strategies (equal weights).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Picks uniformly among the listed strategies (weights not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Fails the property with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Defines `#[test]` functions that run a property over sampled inputs.
///
/// Supported grammar (the subset upstream `proptest!` accepts that this
/// workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($pat,)+) = ( $($crate::Strategy::sample(&($strat), &mut rng),)+ );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1, config.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Deterministic per-test RNG seed (FNV-1a over the test path).
#[doc(hidden)]
pub fn __seed_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (0usize..10).prop_flat_map(|a| (Just(a), a..a + 5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_respects_dependency((a, b) in arb_pair()) {
            prop_assert!(b >= a && b < a + 5);
            prop_assert_eq!(a, a);
        }

        #[test]
        fn vec_and_oneof_compose(
            v in crate::collection::vec(
                prop_oneof![(0u8..4).prop_map(|x| x * 2), Just(9u8)],
                1..6,
            ),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in &v {
                prop_assert!(*x == 9 || (*x % 2 == 0 && *x < 8), "{x}");
            }
            let _: bool = flag; // bool::ANY samples without panicking
        }

        #[test]
        fn filter_map_filters(x in (0usize..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))) {
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use super::Strategy;
        let strat = crate::collection::vec(0u32..1000, 5usize);
        let mut r1 = super::__seed_rng("t");
        let mut r2 = super::__seed_rng("t");
        assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
    }
}
