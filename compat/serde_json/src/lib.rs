//! Offline stand-in for `serde_json`.
//!
//! Encodes/parses JSON text against the sibling `serde` stub's [`Value`]
//! data model. Covers the surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`], [`to_value`], and the
//! [`json!`] macro for flat object literals.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from encoding or parsing JSON.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::ValueError> for Error {
    fn from(e: serde::ValueError) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::from)
}

/// Builds a [`Value`] from a flat JSON object literal. Keys are string
/// literals; each value is any `Serialize` expression.
///
/// ```
/// let v = serde_json::json!({"name": "run", "iters": 3});
/// assert_eq!(v["iters"].as_u64(), Some(3));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(elem, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(elem, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes a float so that it parses back bit-identically: Rust's shortest
/// round-trip `Display`, with a `.0` suffix forced onto integral values so
/// the reader sees a float, not an int. Non-finite values (invalid JSON)
/// degrade to `null` like upstream serde_json.
fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for chars beyond the BMP.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| {
                                Error(format!("invalid \\u escape at byte {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?;
        let cp = u32::from_str_radix(s, 16).map_err(|e| Error(e.to_string()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = json!({"a": 1, "b": -2.5, "s": "x\"y", "arr": vec![1u32, 2]});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for f in [0.1, 1.0, -3.25e-9, 1e300, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = json!({"outer": vec![1u8, 2]});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"outer\""));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"["A\n\t\"\\", "😀"]"#).unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0], "A\n\t\"\\");
        assert_eq!(a[1], "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert!(matches!(back, Value::Float(_)));
    }
}
