//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of parking_lot it actually uses — `Mutex`,
//! `MutexGuard`, `RwLock`, and `Condvar` with parking_lot's non-poisoning
//! API — implemented over `std::sync`. Poisoned std locks are recovered
//! transparently (`PoisonError::into_inner`), matching parking_lot's
//! behaviour of never poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with parking_lot's panic-safe API:
/// `lock()` returns the guard directly, never a `Result`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The `Option` wrapper lets [`Condvar::wait`]
/// temporarily take the underlying std guard by value.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Condition variable compatible with [`Mutex`]; `wait` takes the guard
/// by `&mut` like parking_lot's.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard present");
        let (g, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        res.timed_out()
    }

    /// Wakes one parked thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
