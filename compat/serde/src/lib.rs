//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal serialization framework under serde's name. Instead
//! of serde's visitor-based zero-copy core, this stub round-trips every
//! type through one self-describing [`Value`] tree (the JSON data
//! model), which is all the workspace needs: derived impls feed
//! `serde_json`'s encoder/parser and nothing else.
//!
//! Supported surface:
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the sibling
//!   `serde_derive` stub) for non-generic structs, newtype/tuple
//!   structs, and enums with unit/tuple/struct variants — serialized in
//!   serde's "externally tagged" JSON layout;
//! * `#[serde(default)]` on named struct fields;
//! * impls for the primitive / std types the workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A JSON value: the single data model this stub round-trips through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `i64` (also covers all negative numbers).
    Int(i64),
    /// A non-negative integer exceeding `i64::MAX`.
    UInt(u64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl ValueError {
    /// Error stating what was expected.
    pub fn expected(what: &str) -> ValueError {
        ValueError(format!("expected {what}"))
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for ValueError {}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64` (coercing any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's entry list, if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, ValueError>;
}

// --- derive-macro support helpers (hidden from docs, stable names) ----

/// Looks up a required object field for a derived `Deserialize` impl.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, ValueError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(ValueError(format!("missing field `{key}` in {ty}"))),
    }
}

/// Looks up an optional (`#[serde(default)]`) object field.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<T, ValueError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

// --- impls for primitives and std containers -------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        v.as_bool().ok_or_else(|| ValueError::expected("bool"))
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) {
                    Value::Int(i)
                } else {
                    Value::UInt(v as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, ValueError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    _ => return Err(ValueError::expected(stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| ValueError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        v.as_f64().ok_or_else(|| ValueError::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| ValueError::expected("number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| ValueError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        v.as_array()
            .ok_or_else(|| ValueError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        let a = v.as_array().ok_or_else(|| ValueError::expected("pair"))?;
        if a.len() != 2 {
            return Err(ValueError::expected("array of length 2"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap order is arbitrary).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        v.as_object()
            .ok_or_else(|| ValueError::expected("object"))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(
            f64::from_value(&1.5f64.to_value()).unwrap().to_bits(),
            1.5f64.to_bits()
        );
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![("k".into(), Value::Str("x".into()))]);
        assert_eq!(v["k"], "x");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn u64_beyond_i64_round_trips() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
