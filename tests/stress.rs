//! Stress: a randomized message storm across all ranks — many
//! concurrent multi-path transfers with mixed sizes, tags and wildcard
//! receives, all carrying real payloads that must arrive intact.

use multipath_gpu::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic message matrix: every ordered rank pair (i, j) gets
/// `per_pair` messages with pseudo-random sizes and a content pattern
/// derived from (i, j, k).
fn message_size(rng: &mut StdRng) -> usize {
    // Mix tiny, medium and multi-megabyte messages.
    match rng.gen_range(0..3) {
        0 => rng.gen_range(1..4096),
        1 => rng.gen_range(4096..(256 << 10)),
        _ => rng.gen_range((1 << 20)..(4 << 20)),
    }
}

fn pattern_byte(src: usize, dst: usize, k: usize, i: usize) -> u8 {
    ((src * 31 + dst * 17 + k * 7 + i) % 251) as u8
}

#[test]
fn randomized_message_storm_arrives_intact() {
    let ranks = 4usize;
    let per_pair = 3usize;

    // Pre-generate the size matrix deterministically so every rank
    // agrees on it.
    let mut rng = StdRng::seed_from_u64(42);
    let mut sizes = vec![vec![vec![0usize; per_pair]; ranks]; ranks];
    for (src, row) in sizes.iter_mut().enumerate() {
        for (dst, cell) in row.iter_mut().enumerate() {
            if src == dst {
                continue;
            }
            for slot in cell.iter_mut() {
                *slot = message_size(&mut rng);
            }
        }
    }
    let sizes = Arc::new(sizes);

    let world = World::new(Arc::new(presets::beluga()), UcxConfig::default());
    let sizes2 = sizes.clone();
    let results = world.run(ranks, move |r| {
        // Post all receives (half of them wildcard-source to stress the
        // matching), then all sends, then wait everything.
        let mut reqs = Vec::new();
        let mut recv_bufs = Vec::new();
        for src in 0..ranks {
            if src == r.rank {
                continue;
            }
            for k in 0..per_pair {
                let n = sizes2[src][r.rank][k];
                let buf = r.alloc_zeroed(n);
                let tag = ((src * ranks + r.rank) * per_pair + k) as u64;
                let from = if k % 2 == 0 { Some(src) } else { None };
                reqs.push(r.irecv(&buf, n, from, Some(tag)));
                recv_bufs.push((src, k, buf));
            }
        }
        for dst in 0..ranks {
            if dst == r.rank {
                continue;
            }
            for k in 0..per_pair {
                let n = sizes2[r.rank][dst][k];
                let data: Vec<u8> = (0..n).map(|i| pattern_byte(r.rank, dst, k, i)).collect();
                let buf = r.alloc_bytes(data);
                let tag = ((r.rank * ranks + dst) * per_pair + k) as u64;
                reqs.push(r.isend(&buf, n, dst, tag));
            }
        }
        waitall(r.thread(), &reqs);
        // Verify every received payload.
        for (src, k, buf) in recv_bufs {
            let data = buf.to_vec().unwrap();
            for (i, &b) in data.iter().enumerate() {
                assert_eq!(
                    b,
                    pattern_byte(src, r.rank, k, i),
                    "rank {} msg from {src} slot {k} corrupt at byte {i}",
                    r.rank
                );
            }
        }
        r.now().as_nanos()
    });
    assert_eq!(results.len(), ranks);
    assert_eq!(world.pending_messages(), (0, 0), "no leaked matches");
}

#[test]
fn storm_is_virtually_deterministic() {
    // The same storm twice: virtual completion times agree (thread
    // interleaving must not leak into simulated time).
    let run = || {
        let world = World::new(Arc::new(presets::narval()), UcxConfig::default());
        world.run(4, |r| {
            let n = 1 << 20;
            let peer = (r.rank + 1) % 4;
            let from = (r.rank + 3) % 4;
            for it in 0..5u64 {
                let sbuf = r.alloc(n);
                let rbuf = r.alloc(n);
                r.sendrecv(&sbuf, 0, n, peer, &rbuf, 0, n, from, it);
            }
            r.now().as_nanos()
        })
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        let rel = (*x as f64 - *y as f64).abs() / *x as f64;
        assert!(rel < 1e-6, "{a:?} vs {b:?}");
    }
}
