//! Runtime adaptivity: the fabric degrades mid-run; only the dynamic,
//! recalibrating planner recovers — the strongest form of the paper's
//! case for model-driven over statically tuned configuration.

use multipath_gpu::prelude::*;
use std::sync::Arc;

const MIB: usize = 1 << 20;

/// Measures one warm 128 MB transfer on the context's live engine.
fn measure(ctx: &UcxContext, n: usize) -> f64 {
    let gpus = ctx.runtime().engine().topology().gpus();
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let t0 = ctx.runtime().engine().now();
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    n as f64 / ctx.runtime().engine().now().secs_since(t0)
}

#[test]
fn recalibration_recovers_from_link_degradation() {
    let topo = Arc::new(presets::beluga());
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig {
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let n = 128 * MIB;

    let healthy = measure(&ctx, n);

    // The link to staging GPU 2 degrades to a tenth of its bandwidth.
    let degraded_link = topo.link_between(gpus[0], gpus[2]).unwrap().id;
    ctx.runtime()
        .engine()
        .set_link_capacity(degraded_link, 4.8e9);

    // Stale plan: still ships ~28% of the message through the crippled
    // link — the transfer craters.
    let stale = measure(&ctx, n);
    assert!(
        stale < healthy * 0.55,
        "degradation must hurt the stale plan: {:.1} vs {:.1} GB/s",
        stale / 1e9,
        healthy / 1e9
    );

    // Recalibrate: the probe sees the degraded capacity, the plan
    // reroutes, and most of the bandwidth comes back (the fabric has
    // genuinely lost one detour's worth).
    ctx.recalibrate();
    let recovered = measure(&ctx, n);
    assert!(
        recovered > stale * 1.4,
        "recalibration must recover: {:.1} vs stale {:.1} GB/s",
        recovered / 1e9,
        stale / 1e9
    );
    assert!(
        recovered > healthy * 0.65,
        "recovered {:.1} GB/s should approach healthy {:.1} GB/s minus one detour",
        recovered / 1e9,
        healthy / 1e9
    );

    // The new plan has shifted bytes away from the degraded path.
    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let degraded_share = plan
        .paths
        .iter()
        .find(|p| p.kind.staging_device() == Some(gpus[2]))
        .map(|p| p.theta)
        .unwrap_or(0.0);
    assert!(
        degraded_share < 0.12,
        "degraded path still carries {degraded_share:.2} of the message"
    );
}

#[test]
fn capacity_restoration_is_symmetric() {
    let topo = Arc::new(presets::beluga());
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig {
            selection: PathSelection::TWO_GPUS,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let n = 64 * MIB;
    let link = topo.link_between(gpus[0], gpus[2]).unwrap().id;

    let before = measure(&ctx, n);
    ctx.runtime().engine().set_link_capacity(link, 10e9);
    ctx.recalibrate();
    let degraded = measure(&ctx, n);
    ctx.runtime()
        .engine()
        .set_link_capacity(link, topo.link(link).unwrap().bandwidth);
    ctx.recalibrate();
    let restored = measure(&ctx, n);

    assert!(degraded < before);
    let rel = (restored - before).abs() / before;
    assert!(
        rel < 0.02,
        "restoration should return to baseline: {:.1} vs {:.1} GB/s",
        restored / 1e9,
        before / 1e9
    );
}

#[test]
fn degradation_rebalances_inflight_flows() {
    // Pure engine-level check: two flows share nothing; degrading one
    // flow's link mid-transfer stretches only that flow.
    let topo = Arc::new(presets::beluga());
    let eng = Engine::new(topo.clone());
    let gpus = topo.gpus();
    let l01 = topo.link_between(gpus[0], gpus[1]).unwrap().id;
    let l23 = topo.link_between(gpus[2], gpus[3]).unwrap().id;
    let n = 48_000_000_000usize; // 1 s at full rate
    eng.start_flow(mpx_sim::FlowSpec::new(vec![l01], n), OnComplete::Nothing);
    eng.start_flow(mpx_sim::FlowSpec::new(vec![l23], n), OnComplete::Nothing);
    // At t = 0.5 s, halve l01's capacity.
    eng.run_until(mpx_sim::SimTime::from_secs(0.5));
    eng.set_link_capacity(l01, 24e9);
    eng.run_until_idle();
    // l23's flow finished at ~1 s; l01's flow needed 0.5 + 0.5·2 = 1.5 s.
    let end = eng.now().as_secs();
    assert!((end - 1.5).abs() < 2e-3, "end = {end}");
}
