//! Integration coverage for the model-side extensions: crossover
//! analysis, sensitivity, and their agreement with simulated behaviour.

use mpx_model::{bandwidth_regret_curve, entry_size, full_activation_size, OmegaDelta};
use mpx_topo::params::extract_all;
use mpx_topo::path::enumerate_paths;
use multipath_gpu::prelude::*;
use std::sync::Arc;

fn laws_for(topo: &Topology, sel: PathSelection) -> Vec<OmegaDelta> {
    let gpus = topo.gpus();
    let paths = enumerate_paths(topo, gpus[0], gpus[1], sel).unwrap();
    extract_all(topo, &paths)
        .unwrap()
        .iter()
        .map(|p| OmegaDelta {
            omega: p.omega_unpipelined(),
            delta: p.delta_unpipelined(),
        })
        .collect()
}

/// The analytic entry size of the host path must match where the *full
/// planner* (with pipelining and quantization) starts assigning it
/// bytes, within a factor of a few.
#[test]
fn host_path_entry_size_consistent_with_planner() {
    let topo = Arc::new(presets::beluga());
    let laws = laws_for(&topo, PathSelection::THREE_GPUS_WITH_HOST);
    let analytic = entry_size(&laws[0], laws.last().unwrap()).unwrap();
    assert!(analytic > 0.0);

    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let host_share = |n: usize| {
        planner
            .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS_WITH_HOST)
            .unwrap()
            .paths
            .last()
            .unwrap()
            .share_bytes
    };
    // Well below the analytic entry size: no host bytes. Well above: some.
    let below = (analytic * 0.2) as usize;
    let above = (analytic * 50.0) as usize;
    assert_eq!(host_share(below.max(4096)), 0, "below entry ({below} B)");
    assert!(host_share(above) > 0, "above entry ({above} B)");
}

#[test]
fn narval_entry_sizes_larger_than_beluga() {
    // Narval's host path has larger Δ relative to its very fast direct
    // link, so it needs bigger messages to become worthwhile.
    let beluga = laws_for(&presets::beluga(), PathSelection::THREE_GPUS_WITH_HOST);
    let narval = laws_for(&presets::narval(), PathSelection::THREE_GPUS_WITH_HOST);
    let be = entry_size(&beluga[0], beluga.last().unwrap()).unwrap();
    let na = entry_size(&narval[0], narval.last().unwrap()).unwrap();
    assert!(
        na > be,
        "narval host entry {na:.0} B should exceed beluga {be:.0} B"
    );
}

#[test]
fn full_activation_sizes_are_ordered_across_presets() {
    for (topo, bound) in [(presets::beluga(), 4e6), (presets::narval(), 16e6)] {
        let laws = laws_for(&topo, PathSelection::THREE_GPUS_WITH_HOST);
        let n = full_activation_size(&laws, 1e-3, 1e3, 1e10)
            .unwrap_or_else(|| panic!("{} never activates all paths", topo.name));
        assert!(
            n < bound,
            "{}: all-paths activation at {n:.0} B exceeds {bound:.0}",
            topo.name
        );
    }
}

/// Sensitivity in vivo: plan with deliberately corrupted parameters and
/// *execute on the simulator* — the measured slowdown must not exceed
/// the analytic regret by much (the analytic number is a first-order
/// estimate; the simulator adds quantization).
#[test]
fn analytic_regret_tracks_simulated_regret() {
    use mpx_model::{perturb, Perturb};
    use mpx_topo::path::enumerate_paths;
    use mpx_ucx::{execute_plan, UcxConfig, UcxContext};

    let topo = Arc::new(presets::beluga());
    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let sel = PathSelection::THREE_GPUS;
    let n = 128 << 20;
    let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
    let good_params = extract_all(&topo, &paths).unwrap();
    let bad_params = perturb(&good_params, Perturb::SecondLegBandwidth, -0.4);

    let measure = |params: Vec<mpx_topo::PathParams>| {
        let plan = planner.compute_with_params(n, &paths, params);
        let ctx = UcxContext::new(
            GpuRuntime::new(Engine::new(topo.clone())),
            UcxConfig::default(),
        );
        let rt = ctx.runtime();
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        execute_plan(rt, &plan, &paths, &src, &dst, 0);
        rt.engine().run_until_idle();
        rt.engine().now().as_secs()
    };
    let good = measure(good_params);
    let bad = measure(bad_params);
    let simulated_regret = bad / good - 1.0;
    assert!(
        simulated_regret > 0.0,
        "mis-calibration must cost something: {simulated_regret}"
    );
    // Believing the staging legs are 40% slower than reality shifts real
    // load onto the direct link; the measured cost lands near the
    // analytic regret (~20–30%) — painful but bounded.
    assert!(
        simulated_regret < 0.35,
        "40% second-leg error should stay survivable: {simulated_regret}"
    );
}

#[test]
fn uniform_regret_curve_is_flat_on_presets() {
    for topo in [presets::beluga(), presets::narval()] {
        let laws = laws_for(&topo, PathSelection::THREE_GPUS);
        let curve = bandwidth_regret_curve(&laws, 256e6, &[-0.3, -0.1, 0.1, 0.3]);
        for p in &curve {
            assert!(
                p.regret < 0.02,
                "{}: uniform {:.0}% error cost {:.2}%",
                topo.name,
                p.delta * 100.0,
                p.regret * 100.0
            );
        }
    }
}
