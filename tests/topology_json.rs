//! Custom-topology workflow: serialize a node description to JSON,
//! reload it, and verify the whole stack produces identical results —
//! the path a downstream user takes to model their own machine.

use multipath_gpu::prelude::*;
use std::sync::Arc;

fn roundtrip(topo: &Topology) -> Topology {
    let json = serde_json::to_string(topo).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn presets_roundtrip_exactly() {
    for topo in [
        presets::beluga(),
        presets::narval(),
        presets::dgx1(),
        presets::pcie_only(3),
    ] {
        let back = roundtrip(&topo);
        assert_eq!(topo, back, "{} JSON roundtrip", topo.name);
    }
}

#[test]
fn reloaded_topology_preserves_link_resolution() {
    let topo = presets::narval();
    let back = roundtrip(&topo);
    let gpus = topo.gpus();
    // Shared UPI aliases must survive (they live in the adjacency map).
    let hms = topo.host_memories();
    assert_eq!(
        back.link_between(hms[0], hms[1]).unwrap().id,
        back.link_between(hms[1], hms[0]).unwrap().id,
    );
    for &a in &gpus {
        for &b in &gpus {
            if a == b {
                continue;
            }
            assert_eq!(
                topo.link_between(a, b).unwrap().id,
                back.link_between(a, b).unwrap().id
            );
        }
    }
}

#[test]
fn reloaded_topology_plans_identically() {
    let original = Arc::new(presets::beluga());
    let reloaded = Arc::new(roundtrip(&original));
    let gpus = original.gpus();
    let n = 64 << 20;
    let a = Planner::new(original)
        .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS_WITH_HOST)
        .unwrap();
    let b = Planner::new(reloaded)
        .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS_WITH_HOST)
        .unwrap();
    for (x, y) in a.paths.iter().zip(&b.paths) {
        assert_eq!(x.share_bytes, y.share_bytes);
        assert_eq!(x.chunks, y.chunks);
    }
    assert_eq!(a.predicted_time, b.predicted_time);
}

#[test]
fn reloaded_topology_simulates_identically() {
    let original = Arc::new(presets::beluga());
    let reloaded = Arc::new(roundtrip(&original));
    let run =
        |topo: Arc<Topology>| osu_bw(&topo, UcxConfig::default(), 16 << 20, P2pConfig::default());
    assert_eq!(run(original), run(reloaded));
}
