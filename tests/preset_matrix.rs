//! Smoke matrix: the core benchmark protocols must run clean on every
//! shipped topology preset — this is what catches a preset edit that
//! breaks an assumption elsewhere in the stack.

use mpx_omb::{osu_allreduce, AllreduceAlgo, CollectiveConfig};
use multipath_gpu::prelude::*;
use std::sync::Arc;

fn presets_under_test() -> Vec<Arc<Topology>> {
    vec![
        Arc::new(presets::beluga()),
        Arc::new(presets::narval()),
        Arc::new(presets::dgx1()),
        Arc::new(presets::two_node_beluga(2)),
    ]
}

#[test]
fn every_preset_validates_clean() {
    for topo in presets_under_test() {
        let issues = mpx_topo::validate(&topo);
        assert!(issues.is_empty(), "{}: {issues:?}", topo.name);
    }
}

#[test]
fn bw_and_latency_run_on_every_preset() {
    for topo in presets_under_test() {
        let bw = osu_bw(&topo, UcxConfig::default(), 8 << 20, P2pConfig::default());
        assert!(
            bw > 5e9,
            "{}: implausible bandwidth {:.1} GB/s",
            topo.name,
            bw / 1e9
        );
        let lat = osu_latency(&topo, UcxConfig::default(), 4096, 3);
        assert!(
            lat > 1e-6 && lat < 1e-3,
            "{}: implausible latency {:.1} us",
            topo.name,
            lat * 1e6
        );
    }
}

#[test]
fn four_rank_allreduce_runs_on_every_preset() {
    for topo in presets_under_test() {
        let t = osu_allreduce(
            &topo,
            UcxConfig {
                selection: PathSelection::THREE_GPUS,
                ..UcxConfig::default()
            },
            4 << 20,
            AllreduceAlgo::Rabenseifner,
            CollectiveConfig {
                ranks: 4,
                iterations: 1,
                warmup: 1,
            },
        );
        assert!(t > 0.0, "{}", topo.name);
    }
}

#[test]
fn eight_rank_collectives_on_eight_gpu_presets() {
    for topo in [
        Arc::new(presets::dgx1()),
        Arc::new(presets::two_node_beluga(2)),
    ] {
        let world = World::new(topo.clone(), UcxConfig::default());
        let elems = 64usize;
        let out = world.run(8, move |r| {
            let buf = r.alloc_bytes(mpx_gpu::reduce::f32_bytes(&vec![1.0f32; elems]));
            mpx_mpi::allreduce_rabenseifner(&r, &buf, elems * 4, ReduceOp::Sum);
            mpx_gpu::reduce::bytes_f32(&buf.to_vec().unwrap())[0]
        });
        for (rank, v) in out.iter().enumerate() {
            assert_eq!(*v, 8.0, "{} rank {rank}", topo.name);
        }
    }
}

#[test]
fn every_preset_plans_every_gpu_pair() {
    for topo in presets_under_test() {
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        for &a in &gpus {
            for &b in &gpus {
                if a == b {
                    continue;
                }
                let plan = planner
                    .plan(a, b, 16 << 20, PathSelection::THREE_GPUS)
                    .unwrap_or_else(|e| panic!("{}: {a}->{b}: {e}", topo.name));
                let total: usize = plan.paths.iter().map(|p| p.share_bytes).sum();
                assert_eq!(total, 16 << 20, "{}: {a}->{b}", topo.name);
            }
        }
    }
}
