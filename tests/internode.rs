//! Inter-node multi-rail transfers: the paper's future-work extension,
//! exercised end to end — two Beluga-style nodes joined by InfiniBand
//! rails, with the same model/transport/MPI stack on top.

use multipath_gpu::prelude::*;
use std::sync::Arc;

fn across(topo: &Topology) -> (mpx_topo::DeviceId, mpx_topo::DeviceId) {
    let gpus = topo.gpus();
    (gpus[0], gpus[4]) // node 0 → node 1
}

#[test]
fn model_splits_across_rails() {
    let topo = Arc::new(presets::two_node_beluga(2));
    let (src, dst) = across(&topo);
    let planner = Planner::new(topo.clone());
    let plan = planner
        .plan(src, dst, 256 << 20, PathSelection::TWO_GPUS)
        .unwrap();
    assert_eq!(plan.active_path_count(), 2, "both rails carry load");
    // Symmetric rails: near-even split.
    let (a, b) = (plan.paths[0].theta, plan.paths[1].theta);
    assert!((a - b).abs() < 0.05, "rail shares {a} vs {b}");
    // Rails are single-leg: never chunked by the staging pipeline.
    assert!(plan.paths.iter().all(|p| p.chunks == 1));
}

#[test]
fn two_rails_double_internode_bandwidth() {
    let topo = Arc::new(presets::two_node_beluga(2));
    let (src, dst) = across(&topo);
    let n = 128 << 20;
    let measure = |sel: PathSelection| {
        let rt = GpuRuntime::new(Engine::new(topo.clone()));
        let ctx = UcxContext::new(
            rt,
            UcxConfig {
                selection: sel,
                ..UcxConfig::default()
            },
        );
        let s = ctx.runtime().alloc(src, n);
        let d = ctx.runtime().alloc(dst, n);
        ctx.put_async(&s, &d, n).unwrap();
        ctx.runtime().engine().run_until_idle();
        n as f64 / ctx.runtime().engine().now().as_secs()
    };
    let one = measure(PathSelection::DIRECT_ONLY); // 1 rail
    let two = measure(PathSelection::TWO_GPUS); // 2 rails
    assert!(
        one > 0.9 * 12e9 && one <= 12.1e9,
        "single rail is PCIe-bound: {:.1} GB/s",
        one / 1e9
    );
    let ratio = two / one;
    assert!(
        (1.8..=2.05).contains(&ratio),
        "two rails should ~double bandwidth: {ratio:.2}x"
    );
}

#[test]
fn internode_message_integrity() {
    let topo = Arc::new(presets::two_node_beluga(2));
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(rt, UcxConfig::default());
    let (src_dev, dst_dev) = across(&topo);
    let n = (3 << 20) + 101;
    let data: Vec<u8> = (0..n).map(|i| (i * 11 % 255) as u8).collect();
    let src = ctx.runtime().alloc_bytes(src_dev, data.clone());
    let dst = ctx.runtime().alloc_zeroed(dst_dev, n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    assert_eq!(dst.to_vec().unwrap(), data);
}

#[test]
fn mpi_ranks_span_nodes() {
    // 8 ranks over two nodes: intra-node pairs ride NVLink multi-path,
    // inter-node pairs ride rails — transparently through the same API.
    let topo = Arc::new(presets::two_node_beluga(2));
    let world = World::new(topo, UcxConfig::default());
    let n = 4 << 20;
    let results = world.run(8, move |r| {
        let peer = (r.rank + 4) % 8; // cross-node partner
        let sbuf = r.alloc_bytes(vec![r.rank as u8 + 1; n]);
        let rbuf = r.alloc_zeroed(n);
        r.sendrecv(&sbuf, 0, n, peer, &rbuf, 0, n, peer, 7);
        rbuf.to_vec().unwrap()[0]
    });
    for (rank, got) in results.iter().enumerate() {
        let want = ((rank + 4) % 8) as u8 + 1;
        assert_eq!(*got, want, "rank {rank}");
    }
}

#[test]
fn cross_node_allreduce_correct() {
    let topo = Arc::new(presets::two_node_beluga(1));
    let world = World::new(topo, UcxConfig::default());
    let elems = 256;
    let results = world.run(8, move |r| {
        let vals = vec![(r.rank + 1) as f32; elems];
        let buf = r.alloc_bytes(mpx_gpu::reduce::f32_bytes(&vals));
        mpx_mpi::allreduce_rabenseifner(&r, &buf, elems * 4, ReduceOp::Sum);
        mpx_gpu::reduce::bytes_f32(&buf.to_vec().unwrap())
    });
    let want = (1..=8).sum::<i32>() as f32;
    for (rank, got) in results.iter().enumerate() {
        assert!(
            got.iter().all(|&v| v == want),
            "rank {rank}: {:?}",
            &got[..2]
        );
    }
}

#[test]
fn rail_affinity_prefers_local_numa_nic() {
    let topo = presets::two_node_beluga(2);
    let gpus = topo.gpus();
    let rails = mpx_topo::enumerate_rails(&topo, gpus[0], gpus[5], 2).unwrap();
    // First rail's source NIC must be on GPU 0's node.
    if let mpx_topo::PathKind::Rail { src_nic, .. } = rails[0].kind {
        assert!(topo.same_node(gpus[0], src_nic).unwrap());
    } else {
        panic!("expected a rail path");
    }
}
