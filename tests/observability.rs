//! Cross-crate telemetry integration: the online residual tracker must
//! reproduce the offline predicted-vs-measured comparison (the paper's
//! error-table methodology, `table_error`) within rounding, and the
//! exporter must produce a loadable Chrome/Perfetto trace.

use multipath_gpu::prelude::*;
use std::sync::Arc;

/// Runs one PUT per size on an instrumented context, returning the
/// context plus the offline `(bytes, predicted, measured)` triples
/// gathered the way `table_error` does — plan prediction vs simulated
/// elapsed time.
fn run_instrumented(sizes: &[usize]) -> (UcxContext, Recorder, Vec<(usize, f64, f64)>) {
    let eng = Engine::new(Arc::new(presets::beluga()));
    let rec = Recorder::new();
    eng.set_recorder(rec.clone());
    let ctx = UcxContext::new(GpuRuntime::new(eng), UcxConfig::default());
    let gpus = ctx.runtime().engine().topology().gpus();
    let mut offline = Vec::new();
    for &n in sizes {
        let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
        let src = ctx.runtime().alloc(gpus[0], n);
        let dst = ctx.runtime().alloc(gpus[1], n);
        let t0 = ctx.runtime().engine().now().as_secs();
        let h = ctx.put_async(&src, &dst, n).unwrap();
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        let measured = ctx.runtime().engine().now().as_secs() - t0;
        offline.push((n, plan.predicted_time, measured));
    }
    (ctx, rec, offline)
}

#[test]
fn online_residuals_match_offline_predicted_vs_measured() {
    let sizes = [4 << 20, 16 << 20, 64 << 20];
    let (ctx, _rec, offline) = run_instrumented(&sizes);
    let tracker = ctx.residuals();
    assert_eq!(tracker.count(), sizes.len() as u64);

    // Aggregate: online mean |error| equals the offline computation.
    let offline_mean = offline
        .iter()
        .map(|(_, p, m)| ((p - m) / m).abs())
        .sum::<f64>()
        / offline.len() as f64;
    let online = tracker.mean_abs_error();
    assert!(
        (online - offline_mean).abs() < 1e-9,
        "online {online} vs offline {offline_mean}"
    );

    // Row-level: each size lands in its own log2 class with the same
    // signed relative error (within float rounding of the % scaling).
    let report = ctx.residual_report();
    assert_eq!(report.rows.len(), sizes.len());
    for (n, p, m) in &offline {
        let class = format!("[{}MiB", n >> 20);
        let row = report
            .rows
            .iter()
            .find(|r| r.size_class.starts_with(&class))
            .unwrap_or_else(|| panic!("no row for class {class}"));
        assert_eq!(row.pair, "dev0->dev1");
        assert_eq!(row.count, 1);
        let want = (p - m) / m * 100.0;
        assert!(
            (row.mean_rel_err_pct - want).abs() < 1e-6,
            "class {class}: online {}% vs offline {want}%",
            row.mean_rel_err_pct
        );
    }

    // The rendered table carries every class label.
    let text = report.render();
    for (n, _, _) in &offline {
        assert!(
            text.contains(&format!("{}MiB", n >> 20)),
            "no {}MiB bucket in:\n{text}",
            n >> 20
        );
    }
}

#[test]
fn trace_export_covers_transfer_phases_and_tracks() {
    let (_ctx, rec, _offline) = run_instrumented(&[8 << 20]);
    let events = rec.drain();
    let trace = export_chrome_trace(&events);
    let v: serde_json::Value = serde_json::from_str(&trace).expect("valid trace JSON");
    // Chrome's array form: the document root is the event list.
    let list = v.as_array().unwrap();
    for phase in [Phase::Plan, Phase::Probe, Phase::Transfer, Phase::ChunkLeg] {
        assert!(
            list.iter()
                .any(|e| e["cat"].as_str() == Some(phase.label())),
            "no {} events",
            phase.label()
        );
    }
    // One track per link plus the pair track, announced as thread names.
    let names: Vec<&str> = list
        .iter()
        .filter(|e| e["name"].as_str() == Some("thread_name"))
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.iter().any(|t| t.starts_with("link:dev")), "{names:?}");
    assert!(
        names.contains(&"pair:dev0->dev1"),
        "no pair track: {names:?}"
    );
}

#[test]
fn unified_snapshot_merges_sim_and_transport_counters() {
    let (ctx, _rec, _offline) = run_instrumented(&[4 << 20]);
    let reg = TelemetryRegistry::new();
    ctx.runtime().engine().stats().fill_registry(&reg);
    ctx.fill_registry(&reg);
    let snap = reg.snapshot();
    for name in [
        "sim.flows_completed",
        "sim.link_bytes_total",
        "ucx.cache.misses",
        "ucx.resilience.retries",
        "ucx.residual.samples",
    ] {
        assert!(snap.get(name).is_some(), "missing metric {name}");
    }
    assert_eq!(snap.get("ucx.residual.samples"), Some(1.0));
    // The snapshot round-trips through JSON (the machine-readable form
    // `mpx metrics` emits).
    let json = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}
