//! Reproducibility of the simulation substrate.
//!
//! Callback-structured runs are exactly deterministic: the event queue
//! orders ties by insertion sequence and nothing depends on OS thread
//! scheduling. Thread-structured runs admit bounded nondeterminism (two
//! ranks can reach the matching table in either OS order within the same
//! virtual instant), so their *virtual-time results* are asserted equal
//! across runs, not their event orders.

use multipath_gpu::prelude::*;
use std::sync::Arc;

fn run_callback_transfer() -> (u64, u64) {
    let topo = Arc::new(presets::beluga());
    let rt = GpuRuntime::new(Engine::new(topo));
    let ctx = UcxContext::new(rt, UcxConfig::default());
    let gpus = ctx.runtime().engine().topology().gpus();
    let n = 48 << 20;
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let stats = ctx.runtime().engine().stats();
    (stats.now.as_nanos(), stats.events_processed)
}

#[test]
fn callback_driven_runs_are_bit_identical() {
    let first = run_callback_transfer();
    for _ in 0..3 {
        assert_eq!(run_callback_transfer(), first);
    }
}

fn run_threaded_bw() -> f64 {
    let topo = Arc::new(presets::beluga());
    osu_bw(
        &topo,
        UcxConfig::default(),
        16 << 20,
        P2pConfig::with_window(4),
    )
}

#[test]
fn threaded_runs_agree_in_virtual_time() {
    let first = run_threaded_bw();
    for i in 0..3 {
        let next = run_threaded_bw();
        let rel = (next - first).abs() / first;
        assert!(
            rel < 1e-6,
            "run {i}: {next} vs {first} ({rel:.2e} relative drift)"
        );
    }
}

#[test]
fn collective_results_stable_across_runs() {
    let run = || {
        let world = World::new(Arc::new(presets::narval()), UcxConfig::default());

        world.run(4, |r| {
            let buf = r.alloc(8 << 20);
            mpx_mpi::allreduce_rabenseifner(&r, &buf, 8 << 20, ReduceOp::Sum);
            r.now().as_nanos()
        })
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        let rel = (*x as f64 - *y as f64).abs() / *x as f64;
        assert!(rel < 1e-6, "{a:?} vs {b:?}");
    }
}

/// Same seed + same fault plan ⇒ bit-identical event traces and final
/// stats. Faults are ordinary engine events, so a faulted run is exactly
/// as reproducible as a clean one.
#[test]
fn fault_injected_runs_are_bit_identical() {
    use mpx_sim::{FaultInjector, FaultPlan, FlowSpec, OnComplete};

    let run = || {
        let topo = Arc::new(presets::beluga());
        let eng = Engine::with_tracing(topo.clone(), true);
        let plan = FaultPlan::random(&topo, 0xfab, 2.0, 12);
        FaultInjector::install(&eng, &plan);
        let gpus = topo.gpus();
        for (i, (a, b)) in [(0, 1), (1, 2), (2, 3), (3, 0)].iter().enumerate() {
            let link = topo.link_between(gpus[*a], gpus[*b]).unwrap().id;
            eng.start_flow(
                FlowSpec::new(vec![link], (i + 1) * (16 << 20)),
                OnComplete::Nothing,
            );
        }
        eng.run_until(SimTime::from_secs(3.0));
        (eng.take_trace(), eng.stats())
    };
    let (trace_a, stats_a) = run();
    let (trace_b, stats_b) = run();
    assert_eq!(trace_a, trace_b, "event traces must be bit-identical");
    assert_eq!(stats_a, stats_b, "final stats must be bit-identical");
    assert!(stats_a.faults_fired > 0, "the plan must actually fire");
}

/// Different seeds produce different fault schedules (the generator is
/// actually seeded, not constant).
#[test]
fn fault_plans_differ_across_seeds() {
    use mpx_sim::FaultPlan;
    let topo = presets::beluga();
    assert_ne!(
        FaultPlan::random(&topo, 1, 2.0, 8),
        FaultPlan::random(&topo, 2, 2.0, 8)
    );
}

/// The simulator's flow accounting conserves bytes: per-link counters
/// equal exactly what the transfer plan routed over each link.
#[test]
fn link_byte_accounting_conserves_message() {
    let topo = Arc::new(presets::beluga());
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(rt, UcxConfig::default());
    let gpus = topo.gpus();
    let n = 32 << 20;
    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let stats = ctx.runtime().engine().stats();

    // The direct link must carry exactly the direct share.
    let direct_link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
    let direct_share = plan.paths[0].share_bytes as f64;
    let carried = stats.links[direct_link.index()].bytes;
    assert!(
        (carried - direct_share).abs() < 1.0,
        "direct link carried {carried}, plan said {direct_share}"
    );

    // Total bytes over all links ≥ n (staged bytes cross two links), and
    // every staged byte is accounted exactly twice per leg count.
    let expected_total: f64 = plan
        .paths
        .iter()
        .zip(
            ctx.paths_for(gpus[0], gpus[1], ctx.config().selection)
                .unwrap()
                .iter(),
        )
        .map(|(pp, path)| {
            let hops: usize = path.legs.iter().map(|l| l.route.len()).sum();
            (pp.share_bytes * hops.max(1)) as f64
        })
        .sum();
    let total: f64 = stats.links.iter().map(|l| l.bytes).sum();
    assert!(
        (total - expected_total).abs() < 1.0,
        "links carried {total}, expected {expected_total}"
    );
}
