//! The five observations of the paper's Section 5.2 and the four of
//! Section 5.3, as executable assertions over the reproduced stack.

use mpx_omb::{collective_panel, p2p_panel, CollectiveConfig, CollectiveKind, P2pKind};
use multipath_gpu::prelude::*;
use std::sync::Arc;

const MIB: usize = 1 << 20;

fn sizes() -> Vec<usize> {
    vec![2 * MIB, 8 * MIB, 32 * MIB, 64 * MIB]
}

/// Observation 1 (§5.2): for messages above 8 MB the model's prediction
/// closely matches the observed optimum in the BW test.
#[test]
fn obs1_prediction_matches_optimum_for_large_bw() {
    for topo in [Arc::new(presets::beluga()), Arc::new(presets::narval())] {
        for (label, sel) in PathSelection::paper_grid() {
            let panel = p2p_panel(&topo, P2pKind::Bw, sel, 1, &sizes(), 6);
            let mut observed = panel[1].clone();
            for (p, d) in observed.points.iter_mut().zip(&panel[2].points) {
                p.value = p.value.max(d.value);
            }
            let err = mpx_omb::mean_relative_error(&observed, &panel[3], 8 * MIB);
            assert!(
                err < 0.06,
                "{} {label}: BW prediction error {:.1}% >= 6%",
                topo.name,
                err * 100.0
            );
        }
    }
}

/// Observation 1, second half: BIBW prediction errors are higher than BW
/// errors (the model is direction-agnostic).
#[test]
fn obs1_bibw_errors_exceed_bw_errors() {
    let topo = Arc::new(presets::beluga());
    let sel = PathSelection::THREE_GPUS_WITH_HOST;
    let err_of = |kind| {
        let panel = p2p_panel(&topo, kind, sel, 1, &sizes(), 6);
        let mut observed = panel[1].clone();
        for (p, d) in observed.points.iter_mut().zip(&panel[2].points) {
            p.value = p.value.max(d.value);
        }
        mpx_omb::mean_relative_error(&observed, &panel[3], 4 * MIB)
    };
    let bw = err_of(P2pKind::Bw);
    let bibw = err_of(P2pKind::Bibw);
    assert!(
        bibw > bw,
        "BIBW error {:.1}% should exceed BW error {:.1}%",
        bibw * 100.0,
        bw * 100.0
    );
}

/// Observation 2 (§5.2): larger window sizes allow more concurrent
/// transfers, reducing the impact of latency — bandwidth at small
/// message sizes improves markedly from window 1 to window 16, and the
/// improvement fades for large messages where latency is already
/// amortized.
#[test]
fn obs2_windows_hide_latency_for_small_messages() {
    let topo = Arc::new(presets::beluga());
    let sel = PathSelection::TWO_GPUS;
    let ratio_at = |n: usize| {
        let w1 = p2p_panel(&topo, P2pKind::Bw, sel, 1, &[n], 4)[2]
            .at(n)
            .unwrap();
        let w16 = p2p_panel(&topo, P2pKind::Bw, sel, 16, &[n], 4)[2]
            .at(n)
            .unwrap();
        w16 / w1
    };
    let small = ratio_at(2 * MIB);
    let large = ratio_at(64 * MIB);
    assert!(
        small > 1.15,
        "win16 should lift 2 MB bandwidth: {small:.2}x"
    );
    assert!(
        large < small,
        "the window benefit must fade with size: {large:.2}x vs {small:.2}x"
    );
}

/// Observation 3 (§5.2): host-staged prediction errors are higher on
/// Narval than on Beluga (extra inter-NUMA hop, single memory channel) —
/// checked with datasheet parameters, where the effect is purest.
#[test]
fn obs3_host_staged_error_worse_on_narval() {
    let err_of = |topo: Arc<Topology>| {
        let gpus = topo.gpus();
        let sel = PathSelection::THREE_GPUS_WITH_HOST;
        let cfg = UcxConfig {
            mode: TuningMode::Dynamic,
            params: mpx_ucx::ParamSource::Datasheet,
            selection: sel,
            ..UcxConfig::default()
        };
        let n = 64 * MIB;
        let measured = osu_bw(&topo, cfg, n, P2pConfig::default());
        let predicted = Planner::new(topo.clone())
            .plan(gpus[0], gpus[1], n, sel)
            .unwrap()
            .predicted_bandwidth;
        (predicted - measured).abs() / measured
    };
    let beluga = err_of(Arc::new(presets::beluga()));
    let narval = err_of(Arc::new(presets::narval()));
    assert!(
        narval > beluga,
        "narval host-staged error {:.1}% should exceed beluga {:.1}%",
        narval * 100.0,
        beluga * 100.0
    );
}

/// Observation 4 (§5.2): the model over-estimates bandwidth for small
/// messages (linear Hockney misses per-chunk and launch overheads).
#[test]
fn obs4_model_overestimates_small_messages() {
    let topo = Arc::new(presets::beluga());
    let sel = PathSelection::THREE_GPUS;
    let panel = p2p_panel(&topo, P2pKind::Bw, sel, 1, &[2 * MIB, 64 * MIB], 6);
    let measured_small = panel[2].at(2 * MIB).unwrap();
    let predicted_small = panel[3].at(2 * MIB).unwrap();
    assert!(
        predicted_small > measured_small,
        "at 2 MB the model should overestimate: pred {:.1} vs meas {:.1} GB/s",
        predicted_small / 1e9,
        measured_small / 1e9
    );
    // And the relative error shrinks with size.
    let rel_small = (predicted_small - measured_small).abs() / measured_small;
    let measured_large = panel[2].at(64 * MIB).unwrap();
    let predicted_large = panel[3].at(64 * MIB).unwrap();
    let rel_large = (predicted_large - measured_large).abs() / measured_large;
    assert!(rel_large < rel_small);
}

/// Observation 5 (§5.2): under BIBW, adding the host-staged path *hurts*
/// relative to the same configuration without it — bidirectional staging
/// contends on the shared host resources.
#[test]
fn obs5_host_staging_degrades_bibw() {
    for topo in [Arc::new(presets::beluga()), Arc::new(presets::narval())] {
        let bw_of = |sel| {
            let cfg = UcxConfig {
                mode: TuningMode::Dynamic,
                selection: sel,
                ..UcxConfig::default()
            };
            osu_bibw(&topo, cfg, 64 * MIB, P2pConfig::default())
        };
        let without = bw_of(PathSelection::THREE_GPUS);
        let with_host = bw_of(PathSelection::THREE_GPUS_WITH_HOST);
        assert!(
            with_host < without * 1.02,
            "{}: BIBW with host {:.1} should not beat without {:.1} GB/s",
            topo.name,
            with_host / 1e9,
            without / 1e9
        );
    }
}

/// §5.3 Observation 1: collective improvements are larger on Beluga than
/// on Narval.
#[test]
fn coll_obs1_beluga_gains_more() {
    let best = |topo: Arc<Topology>| {
        let panel = collective_panel(
            &topo,
            CollectiveKind::Alltoall,
            PathSelection::THREE_GPUS,
            &[64 * MIB],
            CollectiveConfig {
                ranks: 4,
                iterations: 2,
                warmup: 1,
            },
        );
        panel[1].at(64 * MIB).unwrap()
    };
    let beluga = best(Arc::new(presets::beluga()));
    let narval = best(Arc::new(presets::narval()));
    assert!(
        beluga > narval,
        "beluga {beluga:.2}x should exceed narval {narval:.2}x"
    );
}

/// §5.3 Observation 3: MPI_Alltoall gains more than MPI_Allreduce (the
/// reduction compute dilutes Allreduce's communication speedup).
#[test]
fn coll_obs3_alltoall_gains_more_than_allreduce() {
    let topo = Arc::new(presets::beluga());
    let coll = CollectiveConfig {
        ranks: 4,
        iterations: 2,
        warmup: 1,
    };
    let speedup = |kind| {
        let panel = collective_panel(&topo, kind, PathSelection::THREE_GPUS, &[32 * MIB], coll);
        panel[1].at(32 * MIB).unwrap()
    };
    let a2a = speedup(CollectiveKind::Alltoall);
    let ar = speedup(CollectiveKind::Allreduce);
    assert!(
        a2a > ar,
        "alltoall {a2a:.2}x should exceed allreduce {ar:.2}x"
    );
}

/// §5.3 Observation 4: Allreduce improves more when going from 2 to 3
/// GPU paths.
#[test]
fn coll_obs4_allreduce_scales_with_paths() {
    let topo = Arc::new(presets::beluga());
    let coll = CollectiveConfig {
        ranks: 4,
        iterations: 2,
        warmup: 1,
    };
    let speedup = |sel| {
        let panel = collective_panel(&topo, CollectiveKind::Allreduce, sel, &[32 * MIB], coll);
        panel[1].at(32 * MIB).unwrap()
    };
    let two = speedup(PathSelection::TWO_GPUS);
    let three = speedup(PathSelection::THREE_GPUS);
    assert!(
        three > two,
        "3-path allreduce {three:.2}x should exceed 2-path {two:.2}x"
    );
}

/// Observation 2, variance half: with timing jitter enabled, window 16
/// shows a smaller coefficient of variation across runs than window 1 —
/// "larger window sizes allow for more concurrent transfers, reducing
/// the impact of latency and bandwidth variations".
#[test]
fn obs2_windows_smooth_timing_variations() {
    use mpx_omb::osu_bw_on;
    use mpx_sim::JitterModel;

    let topo = Arc::new(presets::beluga());
    let cv = |window: usize| {
        let samples: Vec<f64> = (0..10u64)
            .map(|seed| {
                let world = World::new(
                    topo.clone(),
                    UcxConfig {
                        selection: PathSelection::THREE_GPUS,
                        ..UcxConfig::default()
                    },
                );
                world.engine().set_jitter(JitterModel { seed, spread: 0.4 });
                osu_bw_on(
                    &world,
                    2 * MIB,
                    mpx_omb::P2pConfig {
                        window,
                        iterations: 1,
                        warmup: 1,
                    },
                )
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        var.sqrt() / mean
    };
    let cv1 = cv(1);
    let cv16 = cv(16);
    assert!(
        cv16 < cv1,
        "window 16 CV {:.4} should be below window 1 CV {:.4}",
        cv16,
        cv1
    );
}
