//! End-to-end graceful degradation: transfers planned over a multi-path
//! fabric survive injected link faults by re-planning residual bytes
//! over the surviving paths (the PR-2 acceptance scenario).

use mpx_obs::Event;
use mpx_sim::plan_horizon;
use mpx_ucx::TuningMode;
use multipath_gpu::prelude::*;
use std::sync::Arc;

fn ctx_three_paths() -> UcxContext {
    let topo = Arc::new(presets::beluga());
    let rt = GpuRuntime::new(Engine::new(topo));
    UcxContext::new(
        rt,
        UcxConfig {
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        },
    )
}

/// The acceptance scenario: a transfer planned over 3 paths completes
/// with correct byte counts when one path's link is killed mid-transfer,
/// finishing via re-plan on the 2 survivors, with `faults_fired`,
/// `retries` and `replans` visible in the stats.
#[test]
fn kill_one_of_three_paths_recovers_via_replan() {
    let ctx = ctx_three_paths();
    let topo = ctx.runtime().engine().topology().clone();
    let gpus = topo.gpus();
    let n = 64 << 20;

    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    assert_eq!(plan.active_path_count(), 3, "scenario needs 3 live paths");
    let paths = ctx
        .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
        .unwrap();
    // Kill the staged path's second leg (g2 → g1): used by no other
    // candidate, so exactly one path dies.
    let victim = paths[1].legs[1].route[0];
    let kill_at = plan.predicted_time * 0.5;
    let fault = FaultPlan::empty().with(kill_at, victim, FaultKind::Kill);
    FaultInjector::install(ctx.runtime().engine(), &fault);

    let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    let thread = ctx.runtime().engine().register_thread("driver");
    let c = ctx.clone();
    let d = dst.clone();
    let report = std::thread::spawn(move || {
        c.put_resilient(&thread, &src, &d, n, &RecoveryConfig::default())
            .expect("transfer must survive a single path failure")
    })
    .join()
    .unwrap();

    assert!(report.retries >= 1, "deadline miss must trigger a retry");
    assert!(report.replans >= 1, "residual bytes must be re-planned");
    assert_eq!(report.final_paths, 2, "re-plan must run on the survivors");
    assert!(report.recovered_bytes > 0);

    let stats = ctx.runtime().engine().stats();
    assert_eq!(stats.faults_fired, 1);
    assert!(stats.flows_stalled >= 1, "killed path's flows must stall");
    assert_eq!(stats.links_down, 1);
    let res = ctx.resilience_stats();
    assert!(res.retries >= 1 && res.replans >= 1 && res.timeouts >= 1);

    assert_eq!(dst.to_vec().unwrap(), data, "recovered bytes corrupted");
}

/// Degradation down to a single surviving path still completes.
#[test]
fn degrades_to_single_path() {
    let ctx = ctx_three_paths();
    let topo = ctx.runtime().engine().topology().clone();
    let gpus = topo.gpus();
    let n = 32 << 20;

    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let paths = ctx
        .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
        .unwrap();
    // Kill both staged paths' forwarding legs; only the direct path
    // survives.
    let kill_at = plan.predicted_time * 0.4;
    let fault = FaultPlan::empty()
        .with(kill_at, paths[1].legs[1].route[0], FaultKind::Kill)
        .with(kill_at, paths[2].legs[1].route[0], FaultKind::Kill);
    FaultInjector::install(ctx.runtime().engine(), &fault);

    let data: Vec<u8> = (0..n).map(|i| (i * 7 % 253) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    let thread = ctx.runtime().engine().register_thread("driver");
    let c = ctx.clone();
    let d = dst.clone();
    let report = std::thread::spawn(move || {
        c.put_resilient(&thread, &src, &d, n, &RecoveryConfig::default())
            .expect("direct path alone must finish the job")
    })
    .join()
    .unwrap();

    assert_eq!(report.final_paths, 1, "only the direct path survives");
    assert_eq!(dst.to_vec().unwrap(), data);
}

/// A transient flap delays the transfer but needs no re-plan when the
/// slack window already covers the outage.
#[test]
fn flap_within_slack_needs_no_retry() {
    let ctx = ctx_three_paths();
    let topo = ctx.runtime().engine().topology().clone();
    let gpus = topo.gpus();
    let n = 32 << 20;

    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let paths = ctx
        .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
        .unwrap();
    // Short flap: down for 20% of the predicted time, well inside the
    // 4× slack budget.
    let fault = FaultPlan::empty().with(
        plan.predicted_time * 0.3,
        paths[1].legs[1].route[0],
        FaultKind::Flap {
            duration: plan.predicted_time * 0.2,
        },
    );
    assert!(plan_horizon(&fault) > SimTime::ZERO);
    FaultInjector::install(ctx.runtime().engine(), &fault);

    let data: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    let thread = ctx.runtime().engine().register_thread("driver");
    let c = ctx.clone();
    let d = dst.clone();
    let report = std::thread::spawn(move || {
        c.put_resilient(&thread, &src, &d, n, &RecoveryConfig::default())
            .expect("flap must not kill the transfer")
    })
    .join()
    .unwrap();

    assert_eq!(report.retries, 0, "outage inside slack: no retry needed");
    assert_eq!(dst.to_vec().unwrap(), data);
    assert_eq!(ctx.runtime().engine().stats().links_down, 0);
}

/// The hedge row of the fault matrix: a mid-transfer kill on one of the
/// primary's three paths stalls it past the hedge trigger; the residual
/// races on the healthy paths and wins, the destination is bit-exact,
/// and the telemetry stream carries both the `breaker.trip` for the
/// dead path and the decisive `hedge.win` instant.
#[test]
fn mid_transfer_kill_completes_via_hedge() {
    let topo = Arc::new(presets::beluga());
    let engine = Engine::new(topo);
    let rec = Recorder::new();
    engine.set_recorder(rec.clone());
    let ctx = UcxContext::new(
        GpuRuntime::new(engine),
        UcxConfig {
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        },
    );
    let topo = ctx.runtime().engine().topology().clone();
    let gpus = topo.gpus();
    let n = 64 << 20;

    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    assert_eq!(plan.active_path_count(), 3, "scenario needs 3 live paths");
    let paths = ctx
        .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
        .unwrap();
    // Same victim as the re-plan scenario: the staged path's forwarding
    // leg, so exactly one of the primary's paths dies mid-flight.
    let victim = paths[1].legs[1].route[0];
    let fault = FaultPlan::empty().with(plan.predicted_time * 0.5, victim, FaultKind::Kill);
    FaultInjector::install(ctx.runtime().engine(), &fault);

    let data: Vec<u8> = (0..n).map(|i| (i * 13 % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    let thread = ctx.runtime().engine().register_thread("driver");
    let c = ctx.clone();
    let d = dst.clone();
    let report = std::thread::spawn(move || {
        c.put_hedged(&thread, &src, &d, n, &HedgeConfig::default())
            .expect("hedge must finish what the primary cannot")
    })
    .join()
    .unwrap();

    assert!(report.hedges >= 1, "kill must push past the hedge trigger");
    assert!(report.hedge_won, "the dead primary path cannot catch up");
    assert!(report.hedged_bytes > 0);
    assert_eq!(dst.to_vec().unwrap(), data, "hedged bytes corrupted");

    let health = ctx.health_stats();
    assert!(health.trips >= 1, "dead path must trip its breaker");
    assert_eq!(health.hedges, report.hedges);
    assert_eq!(health.hedge_wins, 1);

    let events = rec.drain();
    let instant_named = |name: &str| {
        events.iter().any(|e| match e {
            Event::Instant(i) => i.name.starts_with(name),
            _ => false,
        })
    };
    assert!(
        instant_named("breaker.trip"),
        "breaker trip must be recorded"
    );
    assert!(instant_named("hedge.win"), "hedge win must be recorded");
    assert!(
        events.iter().any(|e| e.phase() == Phase::Hedge),
        "hedge phase events must land on the trace"
    );
}

/// When every path dies and stays dead, the retry budget bounds the
/// failure: put_resilient errors out instead of hanging.
#[test]
fn total_fabric_loss_errors_out() {
    let topo = Arc::new(presets::beluga());
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(
        rt,
        UcxConfig {
            selection: PathSelection::DIRECT_ONLY,
            mode: TuningMode::SinglePath,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let n = 32 << 20;
    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let direct = topo.link_between(gpus[0], gpus[1]).unwrap().id;
    let fault = FaultPlan::empty().with(plan.predicted_time * 0.5, direct, FaultKind::Kill);
    FaultInjector::install(ctx.runtime().engine(), &fault);

    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    let thread = ctx.runtime().engine().register_thread("driver");
    let c = ctx.clone();
    let err = std::thread::spawn(move || {
        c.put_resilient(
            &thread,
            &src,
            &dst,
            n,
            &RecoveryConfig {
                max_retries: 2,
                ..RecoveryConfig::default()
            },
        )
        .expect_err("no surviving path: must error, not hang")
    })
    .join()
    .unwrap();
    match err {
        RecoveryError::Topology(_) => {}
        other => panic!("expected NoUsablePath topology error, got {other:?}"),
    }
}
