//! End-to-end tests of the `mpx` CLI binary (cargo builds it for us;
//! `CARGO_BIN_EXE_mpx` points at it).

use std::process::Command;

fn mpx(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mpx"))
        .args(args)
        .output()
        .expect("run mpx");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn topo_describes_and_validates() {
    let (stdout, _, ok) = mpx(&["topo", "--topo", "narval"]);
    assert!(ok);
    assert!(stdout.contains("narval"));
    assert!(stdout.contains("NVLink-V3"));
    assert!(stdout.contains("validation: clean"));
}

#[test]
fn plan_prints_shares_and_prediction() {
    let (stdout, _, ok) = mpx(&["plan", "--topo", "beluga", "--size", "64M"]);
    assert!(ok);
    assert!(stdout.contains("direct"));
    assert!(stdout.contains("gpu-staged"));
    assert!(stdout.contains("predicted:"));
}

#[test]
fn bw_reports_bandwidth() {
    let (stdout, _, ok) = mpx(&["bw", "--size", "16M", "--mode", "single"]);
    assert!(ok);
    assert!(stdout.contains("GB/s"), "{stdout}");
}

#[test]
fn export_then_plan_via_file_roundtrips() {
    let dir = std::env::temp_dir().join("mpx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("beluga.json");
    let (json, _, ok) = mpx(&["export", "--topo", "beluga"]);
    assert!(ok);
    std::fs::write(&path, &json).unwrap();
    let (stdout, _, ok) = mpx(&[
        "plan",
        "--topo-file",
        path.to_str().unwrap(),
        "--size",
        "32M",
        "--paths",
        "3_GPUs",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("predicted:"));
}

#[test]
fn plan_json_emits_metrics_snapshot() {
    let (stdout, _, ok) = mpx(&["plan", "--topo", "beluga", "--size", "64M", "--json"]);
    assert!(ok, "{stdout}");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert!(!v["entries"].as_array().expect("entries array").is_empty());
    assert!(stdout.contains("plan.predicted_us"), "{stdout}");
    assert!(stdout.contains("cache.misses"), "{stdout}");
}

#[test]
fn trace_writes_perfetto_trace_and_metrics() {
    let dir = std::env::temp_dir().join("mpx-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    let (stdout, stderr, ok) = mpx(&[
        "trace",
        "--topo",
        "beluga",
        "--size",
        "16M",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    // Summary line lists the phases present plus the residual table.
    assert!(stdout.contains("events"), "{stdout}");
    assert!(stdout.contains("dev0->dev1"), "{stdout}");
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let v: serde_json::Value = serde_json::from_str(&trace_text).expect("valid trace JSON");
    let events = v.as_array().expect("trace root is the event array");
    assert!(!events.is_empty());
    for phase in [
        "plan",
        "transfer",
        "chunk-leg",
        "recovery",
        "collective",
        "fault",
        "health",
        "hedge",
    ] {
        assert!(
            events.iter().any(|e| e["cat"].as_str() == Some(phase)),
            "no {phase} events in trace"
        );
    }
    // Rank and link tracks are announced via thread_name metadata.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e["name"].as_str() == Some("thread_name"))
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.iter().any(|t| t.starts_with("link:")), "{names:?}");
    assert!(names.iter().any(|t| t.starts_with("rank")), "{names:?}");
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    let m: serde_json::Value = serde_json::from_str(&metrics_text).expect("valid metrics JSON");
    let text = serde_json::to_string(&m).unwrap();
    assert!(text.contains("sim.flows_completed"), "{text}");
    assert!(text.contains("ucx.resilience.retries"), "{text}");
    assert!(text.contains("health.trips"), "{text}");
}

#[test]
fn put_succeeds_on_a_healthy_fabric() {
    let (stdout, _, ok) = mpx(&["put", "--topo", "beluga", "--size", "32M"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("GB/s"), "{stdout}");
    assert!(stdout.contains("data intact"), "{stdout}");
}

/// A plain `put` on a fabric that loses its only path mid-transfer must
/// exit nonzero with the typed stuck diagnostic — the pre-supervision
/// behavior was a panic deep in the pipeline.
#[test]
fn put_on_a_severed_fabric_exits_with_stuck_error() {
    let dir = std::env::temp_dir().join("mpx-cli-put-test");
    std::fs::create_dir_all(&dir).unwrap();
    let faults = dir.join("kill.json");
    // `fault-plan --scenario kill` targets the staged path's forwarding
    // leg; with `--paths direct` the transfer has no alternative once
    // its own link dies, so build the plan against the direct route.
    let (plan_json, _, ok) = mpx(&[
        "fault-plan",
        "--topo",
        "beluga",
        "--size",
        "32M",
        "--paths",
        "direct",
        "--scenario",
        "kill",
    ]);
    assert!(ok, "{plan_json}");
    std::fs::write(&faults, &plan_json).unwrap();
    let (stdout, stderr, ok) = mpx(&[
        "put",
        "--topo",
        "beluga",
        "--size",
        "32M",
        "--paths",
        "direct",
        "--mode",
        "single",
        "--faults",
        faults.to_str().unwrap(),
    ]);
    assert!(!ok, "stuck put must fail: {stdout}");
    assert!(stderr.contains("transfer stuck"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = mpx(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn bad_size_fails_cleanly() {
    let (_, stderr, ok) = mpx(&["plan", "--size", "lots"]);
    assert!(!ok);
    assert!(stderr.contains("bad size"));
}

#[test]
fn collective_command_predicts_and_measures() {
    let (stdout, _, ok) = mpx(&[
        "collective",
        "--op",
        "alltoall",
        "--size",
        "16M",
        "--paths",
        "3_GPUs",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("predicted"));
    assert!(stdout.contains("measured"));
}
