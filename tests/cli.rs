//! End-to-end tests of the `mpx` CLI binary (cargo builds it for us;
//! `CARGO_BIN_EXE_mpx` points at it).

use std::process::Command;

fn mpx(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mpx"))
        .args(args)
        .output()
        .expect("run mpx");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn topo_describes_and_validates() {
    let (stdout, _, ok) = mpx(&["topo", "--topo", "narval"]);
    assert!(ok);
    assert!(stdout.contains("narval"));
    assert!(stdout.contains("NVLink-V3"));
    assert!(stdout.contains("validation: clean"));
}

#[test]
fn plan_prints_shares_and_prediction() {
    let (stdout, _, ok) = mpx(&["plan", "--topo", "beluga", "--size", "64M"]);
    assert!(ok);
    assert!(stdout.contains("direct"));
    assert!(stdout.contains("gpu-staged"));
    assert!(stdout.contains("predicted:"));
}

#[test]
fn bw_reports_bandwidth() {
    let (stdout, _, ok) = mpx(&["bw", "--size", "16M", "--mode", "single"]);
    assert!(ok);
    assert!(stdout.contains("GB/s"), "{stdout}");
}

#[test]
fn export_then_plan_via_file_roundtrips() {
    let dir = std::env::temp_dir().join("mpx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("beluga.json");
    let (json, _, ok) = mpx(&["export", "--topo", "beluga"]);
    assert!(ok);
    std::fs::write(&path, &json).unwrap();
    let (stdout, _, ok) = mpx(&[
        "plan",
        "--topo-file",
        path.to_str().unwrap(),
        "--size",
        "32M",
        "--paths",
        "3_GPUs",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("predicted:"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = mpx(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn bad_size_fails_cleanly() {
    let (_, stderr, ok) = mpx(&["plan", "--size", "lots"]);
    assert!(!ok);
    assert!(stderr.contains("bad size"));
}

#[test]
fn collective_command_predicts_and_measures() {
    let (stdout, _, ok) = mpx(&[
        "collective",
        "--op",
        "alltoall",
        "--size",
        "16M",
        "--paths",
        "3_GPUs",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("predicted"));
    assert!(stdout.contains("measured"));
}
