//! Cross-crate integration: the full MPI → UCX → GPU runtime → simulator
//! stack, on both evaluated clusters.

use multipath_gpu::prelude::*;
use std::sync::Arc;

fn ucx(mode: TuningMode) -> UcxConfig {
    UcxConfig {
        mode,
        ..UcxConfig::default()
    }
}

/// A multi-megabyte message split across four paths, chunked, pipelined,
/// staged through two GPUs and host memory, must reassemble exactly —
/// on both cluster presets and with awkward sizes.
#[test]
fn multi_path_message_integrity_through_mpi() {
    for topo in [presets::beluga(), presets::narval()] {
        let name = topo.name.clone();
        let world = World::new(Arc::new(topo), ucx(TuningMode::Dynamic));
        let n = (6 << 20) + 4093; // odd size: exercises alignment leftovers
        let results = world.run(2, move |r| {
            if r.rank == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i * 7 % 253) as u8).collect();
                let buf = r.alloc_bytes(data);
                r.send(&buf, n, 1, 42);
                None
            } else {
                let buf = r.alloc_zeroed(n);
                r.recv(&buf, n, Some(0), Some(42));
                buf.to_vec()
            }
        });
        let got = results[1].as_ref().expect("receiver returns data");
        let want: Vec<u8> = (0..n).map(|i| (i * 7 % 253) as u8).collect();
        assert_eq!(got, &want, "corruption on {name}");
    }
}

/// Headline P2P speedups stay in the paper's band on both clusters.
#[test]
fn p2p_speedup_bands() {
    let n = 128 << 20;
    for (name, topo, band) in [
        ("beluga", Arc::new(presets::beluga()), (2.3, 3.4)),
        ("narval", Arc::new(presets::narval()), (1.8, 3.2)),
    ] {
        let single = osu_bw(&topo, ucx(TuningMode::SinglePath), n, P2pConfig::default());
        let multi = osu_bw(&topo, ucx(TuningMode::Dynamic), n, P2pConfig::default());
        let speedup = multi / single;
        assert!(
            speedup >= band.0 && speedup <= band.1,
            "{name}: speedup {speedup:.2} outside [{}, {}]",
            band.0,
            band.1
        );
    }
}

/// Model predictions track the simulated dynamic configuration closely
/// for large messages, on every path selection and both clusters.
#[test]
fn prediction_tracks_simulation_for_large_messages() {
    let n = 64 << 20;
    for topo in [Arc::new(presets::beluga()), Arc::new(presets::narval())] {
        for (label, sel) in PathSelection::paper_grid() {
            let cfg = UcxConfig {
                mode: TuningMode::Dynamic,
                selection: sel,
                ..UcxConfig::default()
            };
            let measured = osu_bw(&topo, cfg, n, P2pConfig::default());
            let planner = Planner::new(topo.clone());
            let gpus = topo.gpus();
            let predicted = planner
                .plan(gpus[0], gpus[1], n, sel)
                .unwrap()
                .predicted_bandwidth;
            let rel = (predicted - measured).abs() / measured;
            // The paper reports <6% on hardware; we allow 12% headroom on
            // the host-staged Narval config (its Obs-3 pathology).
            let bound = if sel.host_staged { 0.20 } else { 0.12 };
            assert!(
                rel < bound,
                "{} {label}: predicted {:.1} vs measured {:.1} GB/s ({:.0}%)",
                topo.name,
                predicted / 1e9,
                measured / 1e9,
                rel * 100.0
            );
        }
    }
}

/// An allreduce produces identical, correct results on every rank while
/// running over the multi-path transport.
#[test]
fn allreduce_correct_over_multipath() {
    let world = World::new(Arc::new(presets::narval()), ucx(TuningMode::Dynamic));
    let elems = 1024;
    let results = world.run(4, move |r| {
        let vals: Vec<f32> = (0..elems).map(|i| (r.rank * elems + i) as f32).collect();
        let buf = r.alloc_bytes(mpx_gpu::reduce::f32_bytes(&vals));
        mpx_mpi::allreduce_rabenseifner(&r, &buf, elems * 4, ReduceOp::Sum);
        mpx_gpu::reduce::bytes_f32(&buf.to_vec().unwrap())
    });
    let want: Vec<f32> = (0..elems)
        .map(|i| (0..4).map(|r| (r * elems + i) as f32).sum())
        .collect();
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(got, &want, "rank {rank} diverged");
    }
}

/// Alltoall over multi-path transport delivers every block to the right
/// place, with Bruck and pairwise agreeing.
#[test]
fn alltoall_algorithms_agree_over_multipath() {
    let run = |bruck: bool| {
        let world = World::new(Arc::new(presets::beluga()), ucx(TuningMode::Dynamic));
        let block = 64 << 10;
        world.run(4, move |r| {
            let sdata: Vec<u8> = (0..4)
                .flat_map(|dst| vec![(r.rank * 4 + dst + 1) as u8; block])
                .collect();
            let send = r.alloc_bytes(sdata);
            let recv = r.alloc_zeroed(4 * block);
            if bruck {
                mpx_mpi::alltoall_bruck(&r, &send, &recv, block);
            } else {
                mpx_mpi::alltoall_pairwise(&r, &send, &recv, block);
            }
            recv.to_vec().unwrap()
        })
    };
    assert_eq!(run(true), run(false));
}

/// The three tuning modes form the expected performance ladder for a
/// large transfer: single-path < static(coarse) <= dynamic, and all
/// complete without leaking matching state.
#[test]
fn tuning_mode_ladder() {
    let topo = Arc::new(presets::beluga());
    let n = 64 << 20;
    let single = osu_bw(&topo, ucx(TuningMode::SinglePath), n, P2pConfig::default());

    let static_cfg = ucx(TuningMode::Static);
    let world = World::new(topo.clone(), static_cfg);
    let gpus = topo.gpus();
    world.context().tune_static(gpus[0], gpus[1], n).unwrap();
    let statically = mpx_omb::osu_bw_on(&world, n, P2pConfig::default());

    let dynamic = osu_bw(&topo, ucx(TuningMode::Dynamic), n, P2pConfig::default());

    assert!(
        statically > 1.8 * single,
        "static {statically} vs single {single}"
    );
    assert!(
        dynamic > 1.8 * single,
        "dynamic {dynamic} vs single {single}"
    );
    assert_eq!(world.pending_messages(), (0, 0));
}

/// DGX-1 partial mesh: a pair with no direct NVLink (0↔5) still
/// communicates — through staged paths only — and the data is intact.
#[test]
fn dgx1_unlinked_pair_transfers_via_staging() {
    let topo = Arc::new(presets::dgx1());
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(rt, UcxConfig::default());
    let g = topo.gpus();
    let n = (2 << 20) + 17;
    let data: Vec<u8> = (0..n).map(|i| (i * 13 % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(g[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(g[5], n);
    let plan = ctx.plan_for(g[0], g[5], n).unwrap();
    assert!(
        plan.paths.iter().all(|p| !p.kind.is_direct()),
        "0-5 has no direct link"
    );
    let h = ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    assert!(h.is_complete());
    assert_eq!(dst.to_vec().unwrap(), data);
}

/// DGX-1 heterogeneity: a single-brick pair (0↔1, 24 GB/s direct) gains
/// relatively more from multi-path than a double-brick pair (0↔3,
/// 48 GB/s direct), because the staged detours contribute the same
/// ~24 GB/s bottleneck either way.
#[test]
fn dgx1_weak_pairs_gain_more_from_multipath() {
    let topo = Arc::new(presets::dgx1());
    let g = topo.gpus();
    let planner = Planner::new(topo.clone());
    let speedup = |a, b| {
        let n = 256 << 20;
        let multi = planner
            .plan(a, b, n, PathSelection::THREE_GPUS)
            .unwrap()
            .predicted_bandwidth;
        let direct = topo.link_between(a, b).unwrap().bandwidth;
        multi / direct
    };
    let weak = speedup(g[0], g[1]); // 24 GB/s direct
    let strong = speedup(g[0], g[3]); // 48 GB/s direct
    assert!(
        weak > strong,
        "single-brick pair should gain more: {weak:.2}x vs {strong:.2}x"
    );
    assert!(
        weak > 2.3,
        "0-1 aggregates three ~24 GB/s paths: {weak:.2}x"
    );
}

/// PCIe-only box: GPUs with no NVLink at all still talk through host
/// staging, end to end through the MPI stack.
#[test]
fn pcie_only_box_communicates_through_host() {
    let topo = Arc::new(presets::pcie_only(2));
    let world = World::new(topo, ucx(TuningMode::Dynamic));
    let n = 1 << 20;
    let results = world.run(2, move |r| {
        if r.rank == 0 {
            let buf = r.alloc_bytes(vec![0xAB; n]);
            r.send(&buf, n, 1, 1);
            None
        } else {
            let buf = r.alloc_zeroed(n);
            r.recv(&buf, n, Some(0), Some(1));
            buf.to_vec()
        }
    });
    assert_eq!(results[1].as_ref().unwrap(), &vec![0xAB; n]);
}

/// Concurrent transfers between disjoint pairs share the fabric without
/// interfering on direct links (full-duplex, disjoint routes).
#[test]
fn disjoint_pairs_do_not_interfere_single_path() {
    let topo = Arc::new(presets::beluga());
    let world = World::new(topo, ucx(TuningMode::SinglePath));
    let n = 32 << 20;
    let times = world.run(4, move |r| {
        let peer = r.rank ^ 1; // pairs (0,1) and (2,3)
        let buf = r.alloc(n);
        r.barrier();
        let t0 = r.now();
        if r.rank % 2 == 0 {
            r.send(&buf, n, peer, 0);
        } else {
            r.recv(&buf, n, Some(peer), Some(0));
        }
        r.now().secs_since(t0)
    });
    // Both pairs finish in single-transfer time (32M / 48 GB/s ≈ 0.70 ms).
    let solo = 32.0 * 1024.0 * 1024.0 / 48e9;
    for (i, t) in times.iter().enumerate() {
        assert!(
            *t < solo * 1.35,
            "rank {i} took {t}, expected ~{solo} (no interference)"
        );
    }
}
