//! The collective-prediction extension vs the simulated collectives:
//! does the per-step joint-planned model track what the full MPI stack
//! actually does?

use mpx_model::{predict_allreduce_knomial, predict_alltoall_bruck};
use mpx_omb::{osu_allreduce, osu_alltoall, AllreduceAlgo, AlltoallAlgo, CollectiveConfig};
use multipath_gpu::prelude::*;
use std::sync::Arc;

const MIB: usize = 1 << 20;

fn cfg(sel: PathSelection) -> UcxConfig {
    UcxConfig {
        selection: sel,
        ..UcxConfig::default()
    }
}

fn coll() -> CollectiveConfig {
    CollectiveConfig {
        ranks: 4,
        iterations: 2,
        warmup: 1,
    }
}

#[test]
fn allreduce_prediction_tracks_simulation() {
    let topo = Arc::new(presets::beluga());
    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let kernel = mpx_gpu::KernelCostModel::default_gpu();
    let reduce_cost = move |b: usize| kernel.cost(b);
    for n in [16 * MIB, 64 * MIB] {
        for sel in [PathSelection::DIRECT_ONLY, PathSelection::THREE_GPUS] {
            let predicted = predict_allreduce_knomial(&planner, &gpus, n, sel, &reduce_cost)
                .unwrap()
                .total;
            let measured = osu_allreduce(
                &topo,
                UcxConfig {
                    mode: if sel == PathSelection::DIRECT_ONLY {
                        TuningMode::SinglePath
                    } else {
                        TuningMode::Dynamic
                    },
                    ..cfg(sel)
                },
                n,
                AllreduceAlgo::Rabenseifner,
                coll(),
            );
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.10,
                "allreduce n={n} {}: predicted {:.0} us vs measured {:.0} us ({:.0}%)",
                sel.label(),
                predicted * 1e6,
                measured * 1e6,
                rel * 100.0
            );
        }
    }
}

#[test]
fn alltoall_prediction_tracks_simulation() {
    let topo = Arc::new(presets::beluga());
    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let kernel = mpx_gpu::KernelCostModel::default_gpu();
    let copy_cost = move |b: usize| kernel.cost_copy(b);
    let block = 8 * MIB;
    let sel = PathSelection::THREE_GPUS;
    let predicted = predict_alltoall_bruck(&planner, &gpus, block, sel, &copy_cost)
        .unwrap()
        .total;
    let measured = osu_alltoall(
        &topo,
        UcxConfig {
            mode: TuningMode::Dynamic,
            ..cfg(sel)
        },
        block,
        AlltoallAlgo::Bruck,
        coll(),
    );
    let rel = (predicted - measured).abs() / measured;
    assert!(
        rel < 0.20,
        "alltoall: predicted {:.0} us vs measured {:.0} us ({:.0}%)",
        predicted * 1e6,
        measured * 1e6,
        rel * 100.0
    );
}

#[test]
fn predicted_collective_speedup_matches_fig7_direction() {
    // The prediction reproduces Fig. 7's core finding: multi-path
    // accelerates the collective, by a factor in the measured band.
    let topo = Arc::new(presets::beluga());
    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let kernel = mpx_gpu::KernelCostModel::default_gpu();
    let reduce_cost = move |b: usize| kernel.cost(b);
    let n = 64 * MIB;
    let single =
        predict_allreduce_knomial(&planner, &gpus, n, PathSelection::DIRECT_ONLY, &reduce_cost)
            .unwrap();
    let multi =
        predict_allreduce_knomial(&planner, &gpus, n, PathSelection::THREE_GPUS, &reduce_cost)
            .unwrap();
    let predicted_speedup = single.total / multi.total;
    let measured_single = osu_allreduce(
        &topo,
        UcxConfig {
            mode: TuningMode::SinglePath,
            ..cfg(PathSelection::THREE_GPUS)
        },
        n,
        AllreduceAlgo::Rabenseifner,
        coll(),
    );
    let measured_multi = osu_allreduce(
        &topo,
        UcxConfig {
            mode: TuningMode::Dynamic,
            ..cfg(PathSelection::THREE_GPUS)
        },
        n,
        AllreduceAlgo::Rabenseifner,
        coll(),
    );
    let measured_speedup = measured_single / measured_multi;
    assert!(
        (predicted_speedup - measured_speedup).abs() / measured_speedup < 0.10,
        "speedup: predicted {predicted_speedup:.2} vs measured {measured_speedup:.2}"
    );
}

/// Radix-4 prediction vs the radix-4 simulated K-nomial: the prediction
/// must capture the ablation's headline — radix 4 beats radix 2 under
/// single-path transport because it loads three links per round
/// algorithmically.
#[test]
fn radix4_prediction_tracks_simulation() {
    use mpx_model::predict_allreduce_knomial_radix;

    let topo = Arc::new(presets::beluga());
    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let kernel = mpx_gpu::KernelCostModel::default_gpu();
    let reduce_cost = move |b: usize| kernel.cost(b);
    let n = 64 * MIB;

    let pred2 = predict_allreduce_knomial_radix(
        &planner,
        &gpus,
        n,
        PathSelection::DIRECT_ONLY,
        &reduce_cost,
        2,
    )
    .unwrap()
    .total;
    let pred4 = predict_allreduce_knomial_radix(
        &planner,
        &gpus,
        n,
        PathSelection::DIRECT_ONLY,
        &reduce_cost,
        4,
    )
    .unwrap()
    .total;
    assert!(
        pred4 < pred2 * 0.6,
        "radix-4 prediction {pred4} should clearly beat radix-2 {pred2}"
    );

    // And it should track the simulated radix-4 run.
    let world = World::new(
        topo.clone(),
        UcxConfig {
            mode: TuningMode::SinglePath,
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        },
    );
    let times = world.run(4, move |r| {
        let buf = r.alloc(n);
        r.barrier();
        let t0 = r.now();
        for _ in 0..2 {
            mpx_mpi::allreduce_knomial(&r, &buf, n, ReduceOp::Sum, 4);
        }
        r.now().secs_since(t0) / 2.0
    });
    let measured = times.into_iter().fold(0.0, f64::max);
    let rel = (pred4 - measured).abs() / measured;
    assert!(
        rel < 0.15,
        "radix-4: predicted {:.0} us vs measured {:.0} us ({:.0}%)",
        pred4 * 1e6,
        measured * 1e6,
        rel * 100.0
    );
}
