//! Parameter extraction end-to-end: measured sweeps on the simulated
//! fabric, fitted with `mpx_model::fit_hockney`, must recover the
//! topology's ground-truth link parameters (paper Fig. 2(a) Step 1).

use mpx_model::fit_hockney;
use mpx_ucx::probe::probe_leg_isolated;
use multipath_gpu::prelude::*;
use std::sync::Arc;

/// Sweep a single link with flows of increasing size; fit Hockney; the
/// fitted (α, β) must match the link's declared parameters.
#[test]
fn hockney_fit_recovers_link_parameters_from_simulation() {
    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    let link = topo.link_between(gpus[0], gpus[1]).unwrap();

    let mut samples = Vec::new();
    for n in [256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20usize] {
        let eng = Engine::new(topo.clone());
        eng.start_flow(FlowSpec::new(vec![link.id], n), OnComplete::Nothing);
        eng.run_until_idle();
        samples.push((n as f64, eng.now().as_secs()));
    }
    let fit = fit_hockney(&samples).expect("fit");
    assert!(
        (fit.beta - link.bandwidth).abs() / link.bandwidth < 1e-3,
        "beta {} vs {}",
        fit.beta,
        link.bandwidth
    );
    assert!(
        (fit.alpha - link.latency).abs() < 1e-7,
        "alpha {} vs {}",
        fit.alpha,
        link.latency
    );
}

/// OSU latency at small sizes approximates the one-way startup cost:
/// link latency plus software overheads.
#[test]
fn small_message_latency_reflects_startup_costs() {
    let topo = Arc::new(presets::beluga());
    let cfg = UcxConfig {
        mode: TuningMode::SinglePath,
        ..UcxConfig::default()
    };
    let lat = osu_latency(&topo, cfg, 1024, 8);
    let oh = &topo.overheads;
    let link = topo.link_between(topo.gpus()[0], topo.gpus()[1]).unwrap();
    let floor = link.latency + oh.copy_launch;
    let ceil = floor + oh.rendezvous + 30e-6;
    assert!(
        lat > floor && lat < ceil,
        "latency {:.2} us outside [{:.2}, {:.2}]",
        lat * 1e6,
        floor * 1e6,
        ceil * 1e6
    );
}

/// Probed leg parameters agree with datasheet values on uncontended
/// routes (the probe is a measurement, not a different model).
#[test]
fn probe_agrees_with_datasheet_on_isolated_routes() {
    let topo = Arc::new(presets::narval());
    let gpus = topo.gpus();
    for (a, b) in [(gpus[0], gpus[1]), (gpus[1], gpus[3])] {
        let link = topo.link_between(a, b).unwrap();
        let leg = probe_leg_isolated(&topo, vec![link.id]);
        // Nanosecond clock rounding bounds the probe's precision.
        assert!(
            (leg.beta - link.bandwidth).abs() / link.bandwidth < 1e-6,
            "probe {} vs datasheet {}",
            leg.beta,
            link.bandwidth
        );
    }
}

/// The full calibrate-plan-execute loop: plans computed from *fitted*
/// parameters perform as well as plans from ground-truth parameters.
#[test]
fn fitted_parameters_plan_as_well_as_ground_truth() {
    let topo = Arc::new(presets::beluga());
    let n = 64 << 20;

    // Ground truth (probed) planning — the default dynamic path.
    let probed = osu_bw(&topo, UcxConfig::default(), n, P2pConfig::default());
    // Datasheet planning.
    let datasheet = osu_bw(
        &topo,
        UcxConfig {
            params: mpx_ucx::ParamSource::Datasheet,
            ..UcxConfig::default()
        },
        n,
        P2pConfig::default(),
    );
    let rel = (probed - datasheet).abs() / probed;
    assert!(
        rel < 0.05,
        "on Beluga (no intra-path sharing) both sources should agree: \
         probed {:.1} vs datasheet {:.1} GB/s",
        probed / 1e9,
        datasheet / 1e9
    );
}

/// On Narval the probed source must *beat* the datasheet source: it sees
/// the shared-DRAM host path for what it is and assigns it less.
#[test]
fn probed_parameters_beat_datasheet_on_narval_host_path() {
    let topo = Arc::new(presets::narval());
    let n = 128 << 20;
    let sel = PathSelection::THREE_GPUS_WITH_HOST;
    let bw_of = |params| {
        osu_bw(
            &topo,
            UcxConfig {
                params,
                selection: sel,
                ..UcxConfig::default()
            },
            n,
            P2pConfig::default(),
        )
    };
    let probed = bw_of(mpx_ucx::ParamSource::Probed);
    let datasheet = bw_of(mpx_ucx::ParamSource::Datasheet);
    assert!(
        probed > datasheet,
        "probed {:.1} GB/s should beat datasheet {:.1} GB/s",
        probed / 1e9,
        datasheet / 1e9
    );
}
