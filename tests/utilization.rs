//! Cross-validation of the reporting layer: per-link byte counters and
//! utilization must reflect exactly what the plan routed where.

use mpx_sim::{bottleneck_link, link_utilization, summarize_trace};
use mpx_topo::path::enumerate_paths;
use multipath_gpu::prelude::*;
use std::sync::Arc;

#[test]
fn per_link_bytes_match_plan_shares() {
    let topo = Arc::new(presets::beluga());
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(
        rt,
        UcxConfig {
            selection: PathSelection::THREE_GPUS_WITH_HOST,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let n = 64 << 20;
    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let paths =
        enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();

    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let stats = ctx.runtime().engine().stats();

    // Each link carried exactly the sum of the shares whose legs cross
    // it (the DRAM self-loop carries the host path's share twice — once
    // per leg).
    let mut expected = vec![0.0f64; topo.link_count()];
    for (pp, path) in plan.paths.iter().zip(&paths) {
        for leg in &path.legs {
            for lid in &leg.route {
                expected[lid.index()] += pp.share_bytes as f64;
            }
        }
    }
    for (l, (got, want)) in stats.links.iter().zip(&expected).enumerate() {
        assert!(
            (got.bytes - want).abs() < 1.0,
            "link {l} carried {}, expected {want}",
            got.bytes
        );
    }
}

#[test]
fn utilization_identifies_equalized_makespan() {
    // At the equal-time optimum every active path's bottleneck link is
    // ~equally busy over the transfer: utilization spread stays small.
    let topo = Arc::new(presets::beluga());
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let ctx = UcxContext::new(
        rt,
        UcxConfig {
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let n = 256 << 20;
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let stats = ctx.runtime().engine().stats();
    let report = link_utilization(&topo, &stats);

    let busy: Vec<f64> = report
        .iter()
        .filter(|u| u.bytes > 0.0)
        .map(|u| u.utilization)
        .collect();
    assert_eq!(busy.len(), 5, "direct + 2×2 staged legs");
    let max = busy.iter().cloned().fold(0.0f64, f64::max);
    let min = busy.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.35,
        "equalized transfer should keep active links similarly busy: {busy:?}"
    );
    // The bottleneck is one of the NVLink links at high utilization.
    let b = bottleneck_link(&topo, &stats).unwrap();
    assert!(b.utilization > 0.7, "{b:?}");
}

#[test]
fn trace_concurrency_reflects_path_count() {
    let topo = Arc::new(presets::beluga());
    let engine = Engine::with_tracing(topo.clone(), true);
    let rt = GpuRuntime::new(engine);
    let ctx = UcxContext::new(
        rt,
        UcxConfig {
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let n = 64 << 20;
    let src = ctx.runtime().alloc(gpus[0], n);
    let dst = ctx.runtime().alloc(gpus[1], n);
    ctx.put_async(&src, &dst, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let trace = ctx.runtime().engine().take_trace();
    let s = summarize_trace(&trace);
    // Direct + staged legs overlap: mean concurrency comfortably above 2
    // and peak at least 3 (1 direct + 2 first legs).
    assert!(s.peak_concurrency >= 3, "{s:?}");
    assert!(s.mean_concurrency > 2.0, "{s:?}");
    // Total traced payload: direct share once, staged shares twice (two
    // legs per chunk).
    assert!(s.bytes > n, "staged legs double-count bytes: {s:?}");
}
