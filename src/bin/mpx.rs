//! `mpx` — command-line front end.
//!
//! ```text
//! mpx topo  --topo beluga                         # describe a preset node
//! mpx export --topo narval > narval.json          # dump a preset as JSON
//! mpx export --topo dgx1 --format dot | dot -Tsvg   # render the graph
//! mpx plan  --topo-file my_node.json --size 64M   # plan on a custom node
//! mpx plan  --topo narval --size 64M [--paths 3_GPUs_w_host] [--src 0 --dst 1]
//! mpx plan  --topo beluga --size 64M --quantize --stats   # size-class reuse + cache counters
//! mpx bw    --topo beluga --size 64M [--window 16] [--mode single|dynamic] [--replay]
//! mpx bibw  --topo beluga --size 64M [--window 16] [--mode single|dynamic] [--replay]
//! mpx collective --op allreduce|alltoall --size 64M [--topo T] [--paths P]
//! mpx fault-plan --topo beluga --scenario degrade|flap|kill|random > faults.json
//! mpx put   --topo beluga --size 64M [--faults faults.json]   # plain PUT; stuck fabric exits 1
//! mpx resilient --topo beluga --size 64M --faults faults.json [--slack S] [--retries R]
//! mpx plan --topo beluga --size 64M --json          # machine-readable snapshot
//! mpx trace --topo beluga --size 64M [--trace-out trace.json] [--metrics-out metrics.json]
//! mpx metrics --topo beluga --size 64M              # metrics snapshot to stdout
//! mpx metrics --topo beluga --size 64M --openmetrics  # Prometheus/OpenMetrics text exposition
//! mpx report --dump dump-0000-breaker_trip.json     # render a black-box dump as a timeline
//! mpx serve --topo beluga --size 4M --load 2 --horizon 0.05   # multi-tenant broker under load
//! mpx submit --topo beluga --size 64M [--deadline S]  # one brokered request; rejection exits 1
//! mpx partition --faults faults.json [--nodes N] [--workers W] [--count FLOWS]
//!                                                  # partitioned engine; divergence exits 1
//! ```

use multipath_gpu::mpi::allreduce;
use multipath_gpu::omb::{run_open_loop, OpenLoopTenant};
use multipath_gpu::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn parse_size(s: &str) -> usize {
    let (num, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1usize << 10),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1usize << 20),
        Some(b'G') | Some(b'g') => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1),
    };
    num.parse::<usize>()
        .unwrap_or_else(|_| die(&format!("bad size `{s}`")))
        * mult
}

fn topology(name: &str) -> Topology {
    match name {
        "beluga" => presets::beluga(),
        "narval" => presets::narval(),
        "dgx1" => presets::dgx1(),
        "pcie" => presets::pcie_only(4),
        "synthetic" => presets::synthetic_default(),
        "two-node" => presets::two_node_beluga(2),
        other => die(&format!(
            "unknown topology `{other}` (beluga|narval|dgx1|pcie|synthetic|two-node)"
        )),
    }
}

fn selection(name: &str) -> PathSelection {
    match name {
        "direct" => PathSelection::DIRECT_ONLY,
        "2_GPUs" => PathSelection::TWO_GPUS,
        "3_GPUs" => PathSelection::THREE_GPUS,
        "3_GPUs_w_host" => PathSelection::THREE_GPUS_WITH_HOST,
        other => die(&format!(
            "unknown path selection `{other}` (direct|2_GPUs|3_GPUs|3_GPUs_w_host)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: mpx <topo|export|plan|bw|bibw|collective|fault-plan|put|resilient|trace|metrics|report|serve|submit|partition> [--topo T | --topo-file F] [--size N] [--window W] [--mode M] [--paths P] [--src I] [--dst J] [--op C] [--scenario S] [--faults F] [--slack X] [--retries R] [--seed N] [--count N] [--horizon T] [--load X] [--deadline S] [--tenant NAME] [--nodes N] [--workers W] [--dump F] [--json] [--replay] [--openmetrics] [--trace-out F] [--metrics-out F]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        die("missing command");
    };
    // Boolean flags take no value; everything else is `--key value`.
    const BOOL_FLAGS: [&str; 5] = ["stats", "quantize", "json", "replay", "openmetrics"];
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            die(&format!("unexpected argument `{flag}`"));
        };
        if BOOL_FLAGS.contains(&key) {
            opts.insert(key.to_string(), "true".into());
            continue;
        }
        let Some(value) = it.next() else {
            die(&format!("flag --{key} needs a value"));
        };
        opts.insert(key.to_string(), value.clone());
    }
    let get = |k: &str, default: &str| opts.get(k).cloned().unwrap_or_else(|| default.into());

    let topo = Arc::new(match opts.get("topo-file") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            let t: Topology = serde_json::from_str(&text)
                .unwrap_or_else(|e| die(&format!("bad topology JSON in {path}: {e}")));
            for issue in mpx_topo::validate(&t) {
                eprintln!("warning: {issue}");
            }
            t
        }
        None => topology(&get("topo", "beluga")),
    });
    let n = parse_size(&get("size", "64M"));
    let sel = selection(&get("paths", "3_GPUs_w_host"));
    let gpus = topo.gpus();
    let src = gpus[get("src", "0")
        .parse::<usize>()
        .unwrap_or_else(|_| die("bad --src"))];
    let dst = gpus[get("dst", "1")
        .parse::<usize>()
        .unwrap_or_else(|_| die("bad --dst"))];
    let window = get("window", "1")
        .parse::<usize>()
        .unwrap_or_else(|_| die("bad --window"));
    let mode = match get("mode", "dynamic").as_str() {
        "single" => TuningMode::SinglePath,
        "dynamic" => TuningMode::Dynamic,
        "static" => TuningMode::Static,
        other => die(&format!("unknown mode `{other}` (single|dynamic|static)")),
    };

    match cmd.as_str() {
        "export" => match get("format", "json").as_str() {
            "json" => println!(
                "{}",
                serde_json::to_string_pretty(topo.as_ref()).expect("topology serializes")
            ),
            "dot" => print!("{}", mpx_topo::to_dot(&topo)),
            other => die(&format!("unknown format `{other}` (json|dot)")),
        },
        "topo" => {
            print!("{}", topo.describe());
            let issues = mpx_topo::validate(&topo);
            if issues.is_empty() {
                println!("validation: clean");
            } else {
                for i in &issues {
                    println!("validation: {i}");
                }
            }
        }
        "plan" => {
            let quantize = opts.contains_key("quantize");
            let planner = Planner::with_config(
                topo.clone(),
                PlannerConfig {
                    size_classes: if quantize {
                        SizeClassConfig::ENABLED
                    } else {
                        SizeClassConfig::default()
                    },
                    ..PlannerConfig::default()
                },
            );
            let plan = planner
                .plan(src, dst, n, sel)
                .unwrap_or_else(|e| die(&e.to_string()));
            if opts.contains_key("json") {
                let reg = TelemetryRegistry::new();
                reg.set_counter("plan.bytes", plan.n as u64);
                reg.set_counter("plan.active_paths", plan.active_path_count() as u64);
                reg.set_gauge("plan.predicted_us", plan.predicted_time * 1e6);
                reg.set_gauge(
                    "plan.predicted_bandwidth_gbps",
                    plan.predicted_bandwidth / 1e9,
                );
                let s = planner.stats();
                reg.set_counter("cache.hits", s.hits);
                reg.set_counter("cache.misses", s.misses);
                reg.set_counter("cache.class_hits", s.class_hits);
                reg.set_counter("cache.class_fallbacks", s.class_fallbacks);
                reg.set_counter("cache.invalidations", s.invalidations);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&reg.snapshot()).expect("snapshot serializes")
                );
            } else {
                println!("{src} -> {dst} ({}):", sel.label());
                print!("{}", plan.describe());
                if opts.contains_key("stats") {
                    let s = planner.stats();
                    println!(
                        "cache: hits={} misses={} class_hits={} class_fallbacks={} invalidations={}",
                        s.hits, s.misses, s.class_hits, s.class_fallbacks, s.invalidations
                    );
                }
            }
        }
        "collective" => {
            use mpx_model::{predict_allreduce_knomial, predict_alltoall_bruck};
            use mpx_omb::{
                osu_allreduce, osu_alltoall, AllreduceAlgo, AlltoallAlgo, CollectiveConfig,
            };
            let op = get("op", "allreduce");
            let planner = Planner::new(topo.clone());
            let gpus = topo.gpus();
            let kernel = mpx_gpu::KernelCostModel::default_gpu();
            let coll = CollectiveConfig {
                ranks: gpus.len().min(4),
                iterations: 2,
                warmup: 1,
            };
            let cfg = UcxConfig {
                mode,
                selection: sel,
                ..UcxConfig::default()
            };
            let (pred, meas) = match op.as_str() {
                "allreduce" => {
                    let n = n - n % (4 * coll.ranks);
                    let p =
                        predict_allreduce_knomial(&planner, &gpus[..coll.ranks], n, sel, &|b| {
                            kernel.cost(b)
                        })
                        .unwrap_or_else(|e| die(&e.to_string()));
                    let m = osu_allreduce(&topo, cfg, n, AllreduceAlgo::Rabenseifner, coll);
                    (p, m)
                }
                "alltoall" => {
                    let block = (n / coll.ranks).max(4);
                    let p =
                        predict_alltoall_bruck(&planner, &gpus[..coll.ranks], block, sel, &|b| {
                            kernel.cost_copy(b)
                        })
                        .unwrap_or_else(|e| die(&e.to_string()));
                    let m = osu_alltoall(&topo, cfg, block, AlltoallAlgo::Bruck, coll);
                    (p, m)
                }
                other => die(&format!(
                    "unknown collective `{other}` (allreduce|alltoall)"
                )),
            };
            println!(
                "{op} {} mode={mode:?} paths={}: predicted {:.0} us (comm {:.0}, compute {:.0}), measured {:.0} us ({:+.1}%)",
                mpx_topo::units::format_bytes(n),
                sel.label(),
                pred.total * 1e6,
                pred.comm * 1e6,
                pred.compute * 1e6,
                meas * 1e6,
                (pred.total - meas) / meas * 100.0
            );
        }
        "bw" | "bibw" => {
            let replay = opts.contains_key("replay");
            let cfg = UcxConfig {
                mode,
                selection: sel,
                graph_replay: replay,
                ..UcxConfig::default()
            };
            let p2p = P2pConfig::with_window(window);
            let bw = if cmd == "bw" {
                osu_bw(&topo, cfg, n, p2p)
            } else {
                osu_bibw(&topo, cfg, n, p2p)
            };
            println!(
                "{cmd} {} window={window} mode={mode:?}{}: {:.2} GB/s",
                mpx_topo::units::format_bytes(n),
                if replay { " replay=on" } else { "" },
                bw / 1e9
            );
        }
        "fault-plan" => {
            let planner = Planner::new(topo.clone());
            let (plan, paths) = planner
                .plan_excluding(src, dst, n, sel, &[])
                .unwrap_or_else(|e| die(&e.to_string()));
            // A link a staged path forwards over, so killing it leaves
            // survivors; falls back to the direct link when the
            // selection has no staged path.
            let staged_leg = paths
                .iter()
                .find(|p| p.legs.len() >= 2)
                .map(|p| p.legs[1].route[0])
                .unwrap_or(paths[0].legs[0].route[0]);
            let t = plan.predicted_time;
            let fplan = match get("scenario", "kill").as_str() {
                // Throttle the direct link hard mid-transfer: the plan's
                // dominant share crawls past its deadline and the
                // recovery loop must re-balance onto the others.
                "degrade" => FaultPlan::empty().with(
                    t * 0.25,
                    paths[0].legs[0].route[0],
                    FaultKind::Degrade { factor: 0.05 },
                ),
                // Outage far longer than the slack window: forces a
                // re-plan over the survivors, then the link returns.
                "flap" => FaultPlan::empty().with(
                    t * 0.3,
                    staged_leg,
                    FaultKind::Flap { duration: t * 8.0 },
                ),
                "kill" => FaultPlan::empty().with(t * 0.5, staged_leg, FaultKind::Kill),
                "random" => {
                    let seed = get("seed", "42")
                        .parse::<u64>()
                        .unwrap_or_else(|_| die("bad --seed"));
                    let count = get("count", "8")
                        .parse::<usize>()
                        .unwrap_or_else(|_| die("bad --count"));
                    let horizon = get("horizon", "1.0")
                        .parse::<f64>()
                        .unwrap_or_else(|_| die("bad --horizon"));
                    FaultPlan::random(&topo, seed, horizon, count)
                }
                other => die(&format!(
                    "unknown scenario `{other}` (degrade|flap|kill|random)"
                )),
            };
            println!(
                "{}",
                serde_json::to_string_pretty(&fplan).expect("fault plan serializes")
            );
        }
        "put" => {
            // Plain (non-resilient) PUT: no deadlines, no retries, no
            // hedging — but a stranded pipeline now surfaces as the
            // typed stuck error and a nonzero exit, never a panic.
            let fplan = match opts.get("faults") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                    let p: FaultPlan = serde_json::from_str(&text)
                        .unwrap_or_else(|e| die(&format!("bad fault plan JSON in {path}: {e}")));
                    let issues = p.validate(&topo);
                    if !issues.is_empty() {
                        for i in &issues {
                            eprintln!("error: {i}");
                        }
                        std::process::exit(2);
                    }
                    Some(p)
                }
                None => None,
            };
            let rt = GpuRuntime::new(Engine::new(topo.clone()));
            let ctx = UcxContext::new(
                rt,
                UcxConfig {
                    mode,
                    selection: sel,
                    ..UcxConfig::default()
                },
            );
            if let Some(p) = &fplan {
                FaultInjector::install(ctx.runtime().engine(), p);
            }
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let srcb = ctx.runtime().alloc_bytes(src, data.clone());
            let dstb = ctx.runtime().alloc_zeroed(dst, n);
            let thread = ctx.runtime().engine().register_thread("mpx-put");
            let c = ctx.clone();
            let d = dstb.clone();
            let result = std::thread::spawn(move || {
                let t0 = thread.now();
                c.put(&thread, &srcb, &d, n)
                    .map(|()| thread.now().secs_since(t0))
            })
            .join()
            .expect("driver thread panicked");
            match result {
                Ok(elapsed) => {
                    let intact = dstb.to_vec().map(|v| v == data).unwrap_or(false);
                    println!(
                        "put {} paths={} mode={mode:?}: {:.3} ms virtual, {:.2} GB/s | data {}",
                        mpx_topo::units::format_bytes(n),
                        sel.label(),
                        elapsed * 1e3,
                        n as f64 / elapsed / 1e9,
                        if intact { "intact" } else { "CORRUPT" },
                    );
                    if !intact {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("error: put failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "resilient" => {
            let faults = opts
                .get("faults")
                .cloned()
                .unwrap_or_else(|| die("resilient needs --faults <plan.json>"));
            let text = std::fs::read_to_string(&faults)
                .unwrap_or_else(|e| die(&format!("cannot read {faults}: {e}")));
            let fplan: FaultPlan = serde_json::from_str(&text)
                .unwrap_or_else(|e| die(&format!("bad fault plan JSON in {faults}: {e}")));
            let issues = fplan.validate(&topo);
            if !issues.is_empty() {
                for i in &issues {
                    eprintln!("error: {i}");
                }
                std::process::exit(2);
            }
            let rcfg = RecoveryConfig {
                slack: get("slack", "4")
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("bad --slack")),
                max_retries: get("retries", "4")
                    .parse::<u32>()
                    .unwrap_or_else(|_| die("bad --retries")),
                ..RecoveryConfig::default()
            };

            let rt = GpuRuntime::new(Engine::new(topo.clone()));
            let ctx = UcxContext::new(
                rt,
                UcxConfig {
                    mode,
                    selection: sel,
                    ..UcxConfig::default()
                },
            );
            FaultInjector::install(ctx.runtime().engine(), &fplan);
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let srcb = ctx.runtime().alloc_bytes(src, data.clone());
            let dstb = ctx.runtime().alloc_zeroed(dst, n);
            let thread = ctx.runtime().engine().register_thread("mpx-resilient");
            let c = ctx.clone();
            let d = dstb.clone();
            let result = std::thread::spawn(move || c.put_resilient(&thread, &srcb, &d, n, &rcfg))
                .join()
                .expect("driver thread panicked");

            let stats = ctx.runtime().engine().stats();
            let res = ctx.resilience_stats();
            match result {
                Ok(report) => {
                    let intact = dstb.to_vec().map(|v| v == data).unwrap_or(false);
                    let cache = ctx.cache_stats();
                    println!(
                        "resilient {} paths={} mode={mode:?}: complete at {:.3} ms virtual | faults_fired={} flows_stalled={} links_down={} | retries={} replans={} timeouts={} recovered={} final_paths={} | cache: hits={} misses={} class_hits={} class_fallbacks={} invalidations={} | data {}",
                        mpx_topo::units::format_bytes(n),
                        sel.label(),
                        stats.now.as_secs() * 1e3,
                        stats.faults_fired,
                        stats.flows_stalled,
                        stats.links_down,
                        report.retries,
                        report.replans,
                        res.timeouts,
                        mpx_topo::units::format_bytes(report.recovered_bytes as usize),
                        report.final_paths,
                        cache.hits,
                        cache.misses,
                        cache.class_hits,
                        cache.class_fallbacks,
                        cache.invalidations,
                        if intact { "intact" } else { "CORRUPT" },
                    );
                    if opts.contains_key("json") {
                        let reg = TelemetryRegistry::new();
                        stats.fill_registry(&reg);
                        ctx.fill_registry(&reg);
                        reg.set_counter("resilient.retries", report.retries);
                        reg.set_counter("resilient.replans", report.replans);
                        reg.set_counter("resilient.recovered_bytes", report.recovered_bytes);
                        reg.set_counter("resilient.final_paths", report.final_paths as u64);
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&reg.snapshot())
                                .expect("snapshot serializes")
                        );
                    }
                    if !intact {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!(
                        "error: resilient transfer failed: {e} (faults_fired={} retries={} replans={})",
                        stats.faults_fired, res.retries, res.replans
                    );
                    std::process::exit(1);
                }
            }
        }
        "serve" => {
            // Multi-tenant broker under a built-in open-loop mix:
            // weighted gold/silver/bronze tenants plus a zero-weight
            // scavenger, at `--load` times the pair's modeled capacity.
            let horizon = get("horizon", "0.05")
                .parse::<f64>()
                .unwrap_or_else(|_| die("bad --horizon"));
            let loadx = get("load", "2")
                .parse::<f64>()
                .unwrap_or_else(|_| die("bad --load"));
            let seed = get("seed", "42")
                .parse::<u64>()
                .unwrap_or_else(|_| die("bad --seed"));
            let ctx = UcxContext::new(
                GpuRuntime::new(Engine::new(topo.clone())),
                UcxConfig {
                    mode,
                    selection: sel,
                    ..UcxConfig::default()
                },
            );
            let plan = ctx
                .plan_for(src, dst, n)
                .unwrap_or_else(|e| die(&e.to_string()));
            let cap_hz = 1.0 / plan.predicted_time.max(1e-12);
            let broker = Broker::new(
                ctx,
                BrokerConfig::default(),
                vec![
                    TenantSpec::new("gold", 3.0),
                    TenantSpec::new("silver", 2.0),
                    TenantSpec::new("bronze", 1.0),
                    TenantSpec::new("scav", 0.0),
                ],
            );
            let mut specs: Vec<OpenLoopTenant> = ["gold", "silver", "bronze"]
                .iter()
                .map(|name| OpenLoopTenant {
                    name: (*name).to_string(),
                    rate_hz: loadx * cap_hz / 3.0,
                    mean_bytes: n,
                    deadline: None,
                })
                .collect();
            specs.push(OpenLoopTenant {
                name: "scav".to_string(),
                rate_hz: 0.2 * cap_hz,
                mean_bytes: n,
                deadline: None,
            });
            let reports = run_open_loop(&broker, src, dst, &specs, horizon, seed);
            let s = broker.stats();
            println!(
                "serve {} mean={} load={loadx}x ({:.0} req/s capacity) horizon={horizon}s",
                get("topo", "beluga"),
                mpx_topo::units::format_bytes(n),
                cap_hz,
            );
            println!(
                "{:>8} {:>9} {:>9} {:>7} {:>9} {:>7} {:>10} {:>9} {:>9}",
                "tenant",
                "submitted",
                "admitted",
                "shed",
                "completed",
                "failed",
                "goodput",
                "p50_us",
                "p99_us"
            );
            for r in &reports {
                println!(
                    "{:>8} {:>9} {:>9} {:>7} {:>9} {:>7} {:>10} {:>9.1} {:>9.1}",
                    r.name,
                    r.submitted,
                    r.admitted,
                    r.shed,
                    r.completed,
                    r.failed,
                    format!("{:.2}GB/s", r.completed_bytes as f64 / horizon / 1e9),
                    r.latency_quantile(0.50).unwrap_or(f64::NAN) * 1e6,
                    r.latency_quantile(0.99).unwrap_or(f64::NAN) * 1e6,
                );
            }
            println!(
                "broker: regime={} changes={} | shed: queue_full={} deadline={} regime={} | dispatches={} coalesced={} queue_peak={} | books {}",
                broker.regime().label(),
                s.regime_changes,
                s.shed_queue_full,
                s.shed_deadline,
                s.shed_regime,
                s.dispatches,
                s.coalesced,
                s.queue_peak,
                if s.accounting_ok() && s.drained_ok() {
                    "balanced"
                } else {
                    "UNBALANCED"
                },
            );
            if opts.contains_key("json") {
                let reg = TelemetryRegistry::new();
                broker.fill_registry(&reg);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&reg.snapshot()).expect("snapshot serializes")
                );
            }
            if !s.accounting_ok() || !s.drained_ok() {
                eprintln!("error: broker accounting violated: {s:?}");
                std::process::exit(1);
            }
        }
        "submit" => {
            // One brokered request end to end: admission (optionally
            // against an explicit `--deadline` in seconds), dispatch,
            // and the ticket outcome. A typed rejection exits 1.
            let deadline = opts
                .get("deadline")
                .map(|s| s.parse::<f64>().unwrap_or_else(|_| die("bad --deadline")));
            let tenant = get("tenant", "cli");
            let ctx = UcxContext::new(
                GpuRuntime::new(Engine::new(topo.clone())),
                UcxConfig {
                    mode,
                    selection: sel,
                    ..UcxConfig::default()
                },
            );
            let engine = ctx.runtime().engine().clone();
            let broker = Broker::new(
                ctx,
                BrokerConfig::default(),
                vec![TenantSpec::new(tenant.clone(), 1.0)],
            );
            broker.set_producers(1);
            let sched_thread = engine.register_thread("mpx-serve");
            let client_thread = engine.register_thread("mpx-submit");
            let ticket = match broker.submit_with_deadline(&tenant, src, dst, n, deadline) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: rejected ({}): {e}", e.label());
                    std::process::exit(1);
                }
            };
            broker.producer_done();
            let sched = {
                let broker = broker.clone();
                std::thread::spawn(move || broker.run(sched_thread))
            };
            let outcome = std::thread::spawn(move || {
                let o = ticket.wait(&client_thread);
                drop(client_thread);
                o
            })
            .join()
            .expect("client thread panicked");
            sched.join().expect("scheduler thread panicked");
            match outcome {
                Outcome::Completed { latency, bytes } => {
                    println!(
                        "submit {} as `{tenant}`: completed in {:.3} ms virtual ({:.2}GB/s)",
                        mpx_topo::units::format_bytes(bytes),
                        latency * 1e3,
                        bytes as f64 / latency.max(1e-12) / 1e9,
                    );
                }
                Outcome::Failed { waited } => {
                    eprintln!("error: transfer failed after {waited:.3}s virtual");
                    std::process::exit(1);
                }
            }
        }
        "trace" | "metrics" => {
            // Instrumented workload: install a recorder on the engine,
            // run a resilient PUT through a synthesized mid-transfer
            // degradation (so recovery and fault telemetry fires), then
            // a small allreduce over the same engine (rank tracks).
            let eng = Engine::new(topo.clone());
            let rec = Recorder::new();
            eng.set_recorder(rec.clone());
            let rt = GpuRuntime::new(eng);
            let cfg = UcxConfig {
                mode,
                selection: sel,
                graph_replay: true,
                ..UcxConfig::default()
            };
            let ctx = UcxContext::new(rt, cfg);
            // One statically tuned entry so the tune phase appears.
            ctx.tune_static(src, dst, n)
                .unwrap_or_else(|e| die(&e.to_string()));
            let plan = ctx
                .plan_for(src, dst, n)
                .unwrap_or_else(|e| die(&e.to_string()));
            let paths = ctx
                .paths_for(src, dst, sel)
                .unwrap_or_else(|e| die(&e.to_string()));
            // Two same-size PUTs through the compiled-graph fast path
            // while the fabric is still healthy: the first captures
            // (graph.capture instant), the second replays
            // (graph.replay span), so both phases land in the trace.
            let gdata: Vec<u8> = (0..n).map(|i| (i * 3 % 251) as u8).collect();
            let gsrc = ctx.runtime().alloc_bytes(src, gdata.clone());
            let gdst = ctx.runtime().alloc_zeroed(dst, n);
            for _ in 0..2 {
                let h = ctx
                    .put_async(&gsrc, &gdst, n)
                    .unwrap_or_else(|e| die(&e.to_string()));
                ctx.runtime().engine().run_until_idle();
                if !h.is_complete() {
                    die("graph workload stalled");
                }
            }
            if gdst.to_vec().map(|v| v != gdata).unwrap_or(true) {
                die("graph workload corrupted data");
            }
            // The fault-plan `degrade` scenario: throttle the direct
            // link hard mid-transfer so the recovery loop must
            // re-balance onto the other paths.
            let fplan = FaultPlan::empty().with(
                plan.predicted_time * 0.25,
                paths[0].legs[0].route[0],
                FaultKind::Degrade { factor: 0.05 },
            );
            FaultInjector::install(ctx.runtime().engine(), &fplan);
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let srcb = ctx.runtime().alloc_bytes(src, data.clone());
            let dstb = ctx.runtime().alloc_zeroed(dst, n);
            let thread = ctx.runtime().engine().register_thread("mpx-trace");
            let c = ctx.clone();
            let d = dstb.clone();
            let rcfg = RecoveryConfig::default();
            let report = std::thread::spawn(move || c.put_resilient(&thread, &srcb, &d, n, &rcfg))
                .join()
                .expect("driver thread panicked")
                .unwrap_or_else(|e| die(&format!("trace workload failed: {e}")));
            if dstb.to_vec().map(|v| v != data).unwrap_or(true) {
                die("trace workload corrupted data");
            }
            // Health/hedge segment: kill the staged path's forwarding
            // leg mid-transfer and drive a hedged PUT through it. The
            // stall trips the dead path's breaker (health instants) and
            // the residual races to completion on the survivors (hedge
            // instants); every later transfer plans around the breaker.
            let hplan = ctx
                .plan_for(src, dst, n)
                .unwrap_or_else(|e| die(&e.to_string()));
            // Fault times are relative to the engine's current virtual
            // time at install.
            let kplan = FaultPlan::empty().with(
                hplan.predicted_time * 0.5,
                paths[1].legs[1].route[0],
                FaultKind::Kill,
            );
            FaultInjector::install(ctx.runtime().engine(), &kplan);
            let hdata: Vec<u8> = (0..n).map(|i| (i * 7 % 251) as u8).collect();
            let hsrc = ctx.runtime().alloc_bytes(src, hdata.clone());
            let hdst = ctx.runtime().alloc_zeroed(dst, n);
            let hthread = ctx.runtime().engine().register_thread("mpx-hedge");
            let c = ctx.clone();
            let hd = hdst.clone();
            let hreport = std::thread::spawn(move || {
                c.put_hedged(&hthread, &hsrc, &hd, n, &HedgeConfig::default())
            })
            .join()
            .expect("hedge driver panicked")
            .unwrap_or_else(|e| die(&format!("hedged trace workload failed: {e}")));
            if hdst.to_vec().map(|v| v != hdata).unwrap_or(true) {
                die("hedged trace workload corrupted data");
            }
            // Broker segment: a few admitted requests through the
            // multi-tenant broker on the same engine, so the trace
            // carries broker dispatch spans and the snapshot carries
            // the broker.* counters.
            let broker = Broker::new(
                ctx.clone(),
                BrokerConfig::default(),
                vec![TenantSpec::new("gold", 1.0)],
            );
            broker.set_producers(1);
            let bsched = ctx.runtime().engine().register_thread("mpx-broker-sched");
            let bclient = ctx.runtime().engine().register_thread("mpx-broker-client");
            let bn = (n / 4).max(1 << 20);
            let sched = {
                let broker = broker.clone();
                std::thread::spawn(move || broker.run(bsched))
            };
            {
                let broker = broker.clone();
                std::thread::spawn(move || {
                    let mut tickets = Vec::new();
                    for _ in 0..3 {
                        match broker.submit("gold", src, dst, bn) {
                            Ok(t) => tickets.push(t),
                            Err(e) => die(&format!("broker trace segment rejected: {e}")),
                        }
                    }
                    broker.producer_done();
                    for t in tickets {
                        if let Outcome::Failed { .. } = t.wait(&bclient) {
                            die("broker trace segment failed");
                        }
                    }
                    drop(bclient);
                })
                .join()
                .expect("broker client panicked");
            }
            sched.join().expect("broker scheduler panicked");
            // Partition segment: a small component-partitioned scenario
            // over a two-node cluster sharing the recorder — per-
            // partition lanes plus a rebalance instant from a bridging
            // flow — so the partition phase lands in the trace.
            {
                let cluster = Arc::new(presets::cluster(2, 4));
                let sc = Scenario::new(cluster)
                    .with_recorder(rec.clone())
                    .flow(FlowSpec::new(vec![LinkId(0)], 1 << 20))
                    .flow(FlowSpec::new(vec![LinkId(21)], 1 << 20))
                    .flow_at(1e-4, FlowSpec::new(vec![LinkId(0), LinkId(21)], 1 << 20));
                let serial = sc.run_serial();
                let par = sc.run_parallel(2);
                if let Some(diff) = equivalence_diff(&serial, &par) {
                    die(&format!("partition trace segment diverged: {diff}"));
                }
            }
            let w = World::over(ctx.runtime().clone(), cfg);
            let ranks = topo.gpus().len().min(4);
            let cn = 1usize << 20;
            w.run(ranks, move |r| {
                let buf = r.alloc(cn);
                allreduce(&r, &buf, cn, ReduceOp::Sum);
            });

            // One snapshot unifying engine and transport counters.
            let reg = TelemetryRegistry::new();
            ctx.runtime().engine().stats().fill_registry(&reg);
            ctx.fill_registry(&reg);
            broker.fill_registry(&reg);
            let snapshot = reg.snapshot();
            let metrics_json =
                serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
            if cmd == "metrics" {
                if opts.contains_key("openmetrics") {
                    print!("{}", render_openmetrics(&reg));
                } else {
                    println!("{metrics_json}");
                }
                return;
            }

            let events = rec.drain();
            let trace = export_chrome_trace(&events);
            // Self-check: the emitted trace must be valid JSON.
            serde_json::from_str::<serde_json::Value>(&trace)
                .unwrap_or_else(|e| die(&format!("generated trace is not valid JSON: {e}")));
            let trace_out = get("trace-out", "trace.json");
            let metrics_out = get("metrics-out", "metrics.json");
            std::fs::write(&trace_out, &trace)
                .unwrap_or_else(|e| die(&format!("cannot write {trace_out}: {e}")));
            std::fs::write(&metrics_out, &metrics_json)
                .unwrap_or_else(|e| die(&format!("cannot write {metrics_out}: {e}")));
            let phases: Vec<&str> = phases_present(&events)
                .into_iter()
                .map(|p| p.label())
                .collect();
            println!(
                "trace {} mode={mode:?}: {} events ({}) -> {trace_out} | {} metrics -> {metrics_out} | retries={} replans={} hedges={} hedge_won={}",
                mpx_topo::units::format_bytes(n),
                events.len(),
                phases.join(","),
                snapshot.entries.len(),
                report.retries,
                report.replans,
                hreport.hedges,
                hreport.hedge_won,
            );
            print!("{}", ctx.residual_report().render());
        }
        "report" => {
            // Render a black-box dump written by the anomaly engine as
            // a human-readable incident timeline.
            let path = opts
                .get("dump")
                .cloned()
                .unwrap_or_else(|| die("mpx report needs --dump <file.json>"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            let dump: BlackBoxDump = serde_json::from_str(&text)
                .unwrap_or_else(|e| die(&format!("bad black-box dump in {path}: {e}")));
            print!("{}", dump.render_timeline());
        }
        "partition" => {
            // Component-partitioned scenario runner: build a cluster
            // workload (optionally under a fault plan), execute serial
            // and parallel, and verify bit-identical output. Exits 1 on
            // any divergence, so CI can drive fault plans through the
            // parallel engine.
            let nodes = get("nodes", "6")
                .parse::<usize>()
                .unwrap_or_else(|_| die("bad --nodes"));
            let workers = get("workers", "8")
                .parse::<usize>()
                .unwrap_or_else(|_| die("bad --workers"));
            let flows = get("count", "96")
                .parse::<usize>()
                .unwrap_or_else(|_| die("bad --count"));
            let seed = get("seed", "42")
                .parse::<u64>()
                .unwrap_or_else(|_| die("bad --seed"));
            let fplan = match opts.get("faults") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                    serde_json::from_str::<FaultPlan>(&text)
                        .unwrap_or_else(|e| die(&format!("bad fault plan in {path}: {e}")))
                }
                None => FaultPlan::empty(),
            };
            const NODE_LINKS: usize = 21; // links per 4-GPU cluster node
            let cluster = Arc::new(presets::cluster(nodes.max(2), 4));
            if let Some(issue) = fplan.validate(&cluster).into_iter().next() {
                die(&format!("fault plan does not fit the cluster: {issue}"));
            }
            let mut sc = Scenario::new(cluster)
                .with_tie_seed(seed)
                .with_jitter(JitterModel { seed, spread: 0.1 })
                .with_faults(fplan);
            for k in 0..flows {
                let node = k % nodes;
                let off = (k / nodes) % 12; // GPU-pair links per node
                let route = vec![LinkId((node * NODE_LINKS + off) as u32)];
                let at = (k / (nodes * 12)) as f64 * 1e-4;
                sc = sc.flow_at(at, FlowSpec::new(route, n / flows.max(1) + k));
            }
            // One bridging flow per adjacent node pair, issued late so
            // the merges land while faults are in flight.
            for node in 0..nodes - 1 {
                let route = vec![
                    LinkId((node * NODE_LINKS) as u32),
                    LinkId(((node + 1) * NODE_LINKS) as u32),
                ];
                sc = sc.flow_at(5e-4, FlowSpec::new(route, 1 << 20));
            }
            let serial = sc.run_serial();
            let par = sc.run_parallel(workers);
            if let Some(diff) = equivalence_diff(&serial, &par) {
                eprintln!("FAIL: parallel output diverged from serial: {diff}");
                std::process::exit(1);
            }
            let s = &serial.stats;
            if opts.contains_key("json") {
                let row = serde_json::json!({
                        "workers": workers,
                        "flows_issued": s.flows_issued,
                        "flows_completed": s.flows_completed,
                        "flows_stalled": s.flows_stalled,
                        "faults_fired": s.faults_fired,
                        "events_processed": s.events_processed,
                        "partitions": s.partitions,
                        "rebalances": s.rebalances,
                        "cross_component_events": s.cross_component_events,
                        "virtual_secs": s.now.as_secs(),
                        "bit_identical": true,
                });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&row).expect("partition row serializes")
                );
            } else {
                println!(
                    "partition: {} flows over {} partitions ({} rebalances, {} cross-component) \
                     serial-vs-parallel@{workers} bit-identical | completed={} stalled={} \
                     faults={} events={} virt={:.3}ms",
                    s.flows_issued,
                    s.partitions,
                    s.rebalances,
                    s.cross_component_events,
                    s.flows_completed,
                    s.flows_stalled,
                    s.faults_fired,
                    s.events_processed,
                    s.now.as_secs() * 1e3,
                );
            }
        }
        other => die(&format!("unknown command `{other}`")),
    }
}
