//! # multipath-gpu — multi-path intra-node GPU communication
//!
//! A full-stack reproduction of *"Accelerating Intra-Node GPU
//! Communication: A Performance Model for Multi-Path Transfers"*
//! (SC Workshops '25): the analytical performance model, an
//! Algorithm-1 planner with configuration caching, a UCX-style transport
//! with a chunked multi-path pipeline engine, a miniature MPI with the
//! paper's collective algorithms, OSU-style benchmarks — all running over
//! a discrete-event simulation of multi-GPU nodes (Beluga: 4×V100
//! NVLink-V2; Narval: 4×A100 NVLink-V3).
//!
//! This crate is the umbrella: it re-exports the whole stack and hosts
//! the runnable examples and cross-crate integration tests.
//!
//! ```
//! use multipath_gpu::prelude::*;
//! use std::sync::Arc;
//!
//! // Ask the model how to split a 64 MB transfer on a Beluga node.
//! let planner = Planner::new(Arc::new(presets::beluga()));
//! let gpus = planner.topology().gpus();
//! let plan = planner
//!     .plan(gpus[0], gpus[1], 64 << 20, PathSelection::THREE_GPUS_WITH_HOST)
//!     .unwrap();
//! assert_eq!(plan.active_path_count(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mpx_broker as broker;
pub use mpx_gpu as gpu;
pub use mpx_model as model;
pub use mpx_mpi as mpi;
pub use mpx_obs as obs;
pub use mpx_omb as omb;
pub use mpx_sim as sim;
pub use mpx_topo as topo;
pub use mpx_ucx as ucx;

/// The names most programs need.
pub mod prelude {
    pub use mpx_broker::{
        Broker, BrokerConfig, BrokerStats, LoadRegime, Outcome, Rejected, TenantSpec,
    };
    pub use mpx_gpu::{Buffer, GpuRuntime, ReduceOp};
    pub use mpx_model::{Planner, PlannerConfig, SizeClassConfig, TransferPlan};
    pub use mpx_mpi::{waitall, Rank, World};
    pub use mpx_obs::{
        export_chrome_trace, phases_present, render_openmetrics, AnomalyConfig, AnomalyEngine,
        BlackBoxDump, FlightRecorder, MetricsSnapshot, Phase, QuantileHist, Recorder,
        ResidualTracker, TelemetryRegistry, TriggerClass,
    };
    pub use mpx_omb::{osu_bibw, osu_bw, osu_latency, P2pConfig};
    pub use mpx_sim::{
        equivalence_diff, Engine, FaultInjector, FaultKind, FaultPlan, FlowSpec, JitterModel,
        OnComplete, Scenario, SimTime, Waker,
    };
    pub use mpx_topo::{presets, LinkId, PathSelection, Topology, TopologyBuilder};
    pub use mpx_ucx::{
        DeadlinePolicy, HealthConfig, HedgeConfig, RecoveryConfig, RecoveryError, TransferError,
        TuningMode, UcxConfig, UcxContext,
    };
}
